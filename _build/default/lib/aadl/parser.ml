(* Recursive-descent parser for the textual AADL subset.

   Supported: component type and implementation declarations for all
   categories of Ast.category; features (ports and data accesses);
   subcomponents; port and access connections; mode declarations;
   property associations with units, ranges, references, lists and
   [applies to] clauses; optional [package] wrappers.  Keywords are
   case-insensitive, as required by AS5506. *)

exception Error of string * Ast.srcloc

type state = { toks : (Lexer.token * Ast.srcloc) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let peek_loc st = snd st.toks.(st.pos)

let peek2 st =
  if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1)
  else Lexer.EOF

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let fail st msg = raise (Error (msg, peek_loc st))

let expect st tok what =
  if peek st = tok then advance st
  else
    fail st
      (Fmt.str "expected %s but found %a" what Lexer.pp_token (peek st))

let ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | t -> fail st (Fmt.str "expected identifier, found %a" Lexer.pp_token t)

(* Case-insensitive keyword tests on identifier tokens. *)
let is_kw st kw =
  match peek st with
  | Lexer.IDENT s -> String.lowercase_ascii s = kw
  | _ -> false

let accept_kw st kw =
  if is_kw st kw then begin
    advance st;
    true
  end
  else false

let expect_kw st kw =
  if not (accept_kw st kw) then
    fail st (Fmt.str "expected keyword %S, found %a" kw Lexer.pp_token (peek st))

let category_of_kw = function
  | "system" -> Some Ast.System
  | "process" -> Some Ast.Process
  | "thread" -> Some Ast.Thread (* "thread group" resolved by caller *)
  | "subprogram" -> Some Ast.Subprogram
  | "data" -> Some Ast.Data
  | "processor" -> Some Ast.Processor
  | "memory" -> Some Ast.Memory
  | "bus" -> Some Ast.Bus
  | "device" -> Some Ast.Device
  | _ -> None

(* Parse a category keyword, handling the two-word "thread group". *)
let parse_category st =
  match peek st with
  | Lexer.IDENT s -> (
      match category_of_kw (String.lowercase_ascii s) with
      | Some Ast.Thread when peek2 st = Lexer.IDENT "group" ->
          advance st;
          advance st;
          Ast.Thread_group
      | Some c ->
          advance st;
          c
      | None -> fail st (Fmt.str "expected component category, found %S" s))
  | t -> fail st (Fmt.str "expected component category, found %a" Lexer.pp_token t)

(* {1 Property values} *)

let rec parse_pvalue st : Ast.pvalue =
  let v = parse_pvalue_atom st in
  if peek st = Lexer.DOTDOT then begin
    advance st;
    let hi = parse_pvalue_atom st in
    Ast.Prange (v, hi)
  end
  else v

and parse_pvalue_atom st : Ast.pvalue =
  match peek st with
  | Lexer.INT n -> (
      advance st;
      (* a following identifier may be a time unit *)
      match peek st with
      | Lexer.IDENT u when Time.unit_of_string u <> None -> (
          advance st;
          match Time.unit_of_string u with
          | Some unit_ -> Ast.Ptime (Time.make n unit_)
          | None -> assert false)
      | _ -> Ast.Pint n)
  | Lexer.REAL f ->
      advance st;
      Ast.Preal f
  | Lexer.STRING s ->
      advance st;
      Ast.Pstring s
  | Lexer.LPAREN ->
      advance st;
      let rec items acc =
        if peek st = Lexer.RPAREN then List.rev acc
        else
          let v = parse_pvalue st in
          if peek st = Lexer.COMMA then begin
            advance st;
            items (v :: acc)
          end
          else List.rev (v :: acc)
      in
      let vs = items [] in
      expect st Lexer.RPAREN "')' closing a property list";
      Ast.Plist vs
  | Lexer.IDENT s when String.lowercase_ascii s = "reference" ->
      advance st;
      expect st Lexer.LPAREN "'(' after reference";
      let path = parse_dotted_path st in
      expect st Lexer.RPAREN "')' closing a reference";
      Ast.Preference path
  | Lexer.IDENT s when String.lowercase_ascii s = "true" ->
      advance st;
      Ast.Pbool true
  | Lexer.IDENT s when String.lowercase_ascii s = "false" ->
      advance st;
      Ast.Pbool false
  | Lexer.IDENT s ->
      advance st;
      Ast.Penum s
  | t -> fail st (Fmt.str "expected property value, found %a" Lexer.pp_token t)

and parse_dotted_path st =
  let first = ident st in
  let rec go acc =
    if peek st = Lexer.DOT then begin
      advance st;
      go (ident st :: acc)
    end
    else List.rev acc
  in
  go [ first ]

(* A property name is [ident] or [set::name]; '::' arrives as two colons. *)
let parse_property_name st =
  let first = ident st in
  if peek st = Lexer.COLON && peek2 st = Lexer.COLON then begin
    advance st;
    advance st;
    let second = ident st in
    String.lowercase_ascii (first ^ "::" ^ second)
  end
  else String.lowercase_ascii first

let parse_prop st : Ast.prop =
  let ploc = peek_loc st in
  let pname = parse_property_name st in
  (match peek st with
  | Lexer.DARROW | Lexer.PLUSDARROW -> advance st
  | t -> fail st (Fmt.str "expected '=>' in property association, found %a" Lexer.pp_token t));
  let pvalue = parse_pvalue st in
  let applies_to =
    if is_kw st "applies" then begin
      advance st;
      expect_kw st "to";
      let rec paths acc =
        let p = parse_dotted_path st in
        if peek st = Lexer.COMMA then begin
          advance st;
          paths (p :: acc)
        end
        else List.rev (p :: acc)
      in
      paths []
    end
    else []
  in
  expect st Lexer.SEMI "';' ending a property association";
  { Ast.pname; pvalue; applies_to; ploc }

(* Parse a "{ prop... }" curly property block (inline association list). *)
let parse_curly_props st =
  if peek st = Lexer.LBRACE then begin
    advance st;
    let rec go acc =
      if peek st = Lexer.RBRACE then begin
        advance st;
        List.rev acc
      end
      else go (parse_prop st :: acc)
    in
    go []
  end
  else []

(* Optional "in modes ( m1, m2 )" clause. *)
let parse_in_modes st =
  let next_is_modes =
    match peek2 st with
    | Lexer.IDENT s -> String.lowercase_ascii s = "modes"
    | _ -> false
  in
  if is_kw st "in" && next_is_modes then begin
    advance st;
    advance st;
    expect st Lexer.LPAREN "'(' after in modes";
    let rec go acc =
      let m = ident st in
      if peek st = Lexer.COMMA then begin
        advance st;
        go (m :: acc)
      end
      else List.rev (m :: acc)
    in
    let ms = go [] in
    expect st Lexer.RPAREN "')' closing in modes";
    ms
  end
  else []

(* Sections may be "none ;" *)
let accept_none_section st =
  if is_kw st "none" && peek2 st = Lexer.SEMI then begin
    advance st;
    advance st;
    true
  end
  else false

(* {1 Features} *)

let parse_direction st =
  if accept_kw st "in" then
    if accept_kw st "out" then Ast.In_out else Ast.In
  else if accept_kw st "out" then Ast.Out
  else fail st "expected 'in' or 'out' in a port declaration"

let parse_feature st : Ast.feature =
  let floc = peek_loc st in
  let fname = ident st in
  expect st Lexer.COLON "':' after feature name";
  let fkind =
    if is_kw st "requires" || is_kw st "provides" then begin
      let dir = if accept_kw st "requires" then Ast.In else (advance st; Ast.Out) in
      expect_kw st "data";
      expect_kw st "access";
      let cls =
        match peek st with
        | Lexer.IDENT _ -> Some (String.concat "." (parse_dotted_path st))
        | _ -> None
      in
      Ast.Data_access (dir, cls)
    end
    else begin
      let dir = parse_direction st in
      let kind =
        if accept_kw st "event" then
          if accept_kw st "data" then Ast.Event_data_port else Ast.Event_port
        else if accept_kw st "data" then Ast.Data_port
        else fail st "expected 'data', 'event' or 'event data' port kind"
      in
      expect_kw st "port";
      let cls =
        match peek st with
        | Lexer.IDENT _ -> Some (String.concat "." (parse_dotted_path st))
        | _ -> None
      in
      Ast.Port (dir, kind, cls)
    end
  in
  let fprops = parse_curly_props st in
  expect st Lexer.SEMI "';' ending a feature";
  { Ast.fname; fkind; fprops; floc }

(* {1 Subcomponents, connections, modes} *)

let parse_subcomponent st : Ast.subcomponent =
  let sub_loc = peek_loc st in
  let sub_name = ident st in
  expect st Lexer.COLON "':' after subcomponent name";
  let sub_category = parse_category st in
  let sub_classifier =
    match peek st with
    | Lexer.IDENT _ -> Some (String.concat "." (parse_dotted_path st))
    | _ -> None
  in
  let sub_props = parse_curly_props st in
  let sub_modes = parse_in_modes st in
  expect st Lexer.SEMI "';' ending a subcomponent";
  { Ast.sub_name; sub_category; sub_classifier; sub_props; sub_modes; sub_loc }

let parse_conn_end st : Ast.conn_end =
  let first = ident st in
  if peek st = Lexer.DOT then begin
    advance st;
    let feat = ident st in
    { Ast.ce_sub = Some first; ce_feature = feat }
  end
  else { Ast.ce_sub = None; ce_feature = first }

let parse_connection st : Ast.connection =
  let conn_loc = peek_loc st in
  (* optional label: IDENT ':' not followed by a connection keyword *)
  let conn_name =
    match (peek st, peek2 st) with
    | Lexer.IDENT n, Lexer.COLON
      when not (String.lowercase_ascii n = "port") ->
        advance st;
        advance st;
        Some n
    | _ -> None
  in
  let conn_kind =
    if accept_kw st "port" then Ast.Port_connection
    else if accept_kw st "data" then
      if accept_kw st "access" then Ast.Access_connection
      else begin
        (* legacy AADLv1 syntax: "data port a -> b" *)
        expect_kw st "port";
        Ast.Port_connection
      end
    else if accept_kw st "event" then begin
      (* legacy AADLv1 syntax: "event data port" / "event port" connection *)
      ignore (accept_kw st "data");
      expect_kw st "port";
      Ast.Port_connection
    end
    else Ast.Port_connection (* AADLv1 "data port a -> b" handled below *)
  in
  let src = parse_conn_end st in
  let conn_bidirectional =
    match peek st with
    | Lexer.ARROW ->
        advance st;
        false
    | Lexer.BIARROW ->
        advance st;
        true
    | t -> fail st (Fmt.str "expected '->' or '<->', found %a" Lexer.pp_token t)
  in
  let dst = parse_conn_end st in
  let conn_props = parse_curly_props st in
  let conn_modes = parse_in_modes st in
  expect st Lexer.SEMI "';' ending a connection";
  {
    Ast.conn_name;
    conn_kind;
    conn_src = src;
    conn_dst = dst;
    conn_bidirectional;
    conn_props;
    conn_modes;
    conn_loc;
  }

type mode_item = Mode_decl of Ast.mode | Mode_trans of Ast.mode_transition

let parse_mode_item st : mode_item =
  let loc = peek_loc st in
  let first = ident st in
  (* optional transition label: "t1: m1 -[...]-> m2;" *)
  let first =
    let labeled_transition =
      peek st = Lexer.COLON
      &&
      match peek2 st with
      | Lexer.IDENT s ->
          let s = String.lowercase_ascii s in
          s <> "initial" && s <> "mode"
      | _ -> false
    in
    if labeled_transition then begin
      advance st;
      ident st
    end
    else first
  in
  match peek st with
  | Lexer.COLON ->
      advance st;
      let mode_initial = accept_kw st "initial" in
      expect_kw st "mode";
      expect st Lexer.SEMI "';' ending a mode";
      Mode_decl { Ast.mode_name = first; mode_initial; mode_loc = loc }
  | Lexer.TRANSL ->
      advance st;
      let rec triggers acc =
        let t = parse_conn_end st in
        if peek st = Lexer.COMMA then begin
          advance st;
          triggers (t :: acc)
        end
        else List.rev (t :: acc)
      in
      let mt_triggers = triggers [] in
      expect st Lexer.RBRACKET "']' closing the trigger list";
      expect st Lexer.ARROW "'->' after the trigger list";
      let dst = ident st in
      expect st Lexer.SEMI "';' ending a mode transition";
      Mode_trans
        { Ast.mt_src = first; mt_dst = dst; mt_triggers; mt_loc = loc }
  | t ->
      fail st
        (Fmt.str "expected ':' or '-[' in a mode declaration, found %a"
           Lexer.pp_token t)

(* {1 Declarations} *)

let parse_type_body st category name loc : Ast.component_type =
  let features =
    if accept_kw st "features" then
      if accept_none_section st then []
      else begin
        let rec go acc =
          match peek st with
          | Lexer.IDENT s
            when not
                   (List.mem (String.lowercase_ascii s)
                      [ "properties"; "end"; "flows"; "modes" ]) ->
              go (parse_feature st :: acc)
          | _ -> List.rev acc
        in
        go []
      end
    else []
  in
  let props =
    if accept_kw st "properties" then
      if accept_none_section st then []
      else begin
        let rec go acc =
          match peek st with
          | Lexer.IDENT s when String.lowercase_ascii s <> "end" ->
              go (parse_prop st :: acc)
          | _ -> List.rev acc
        in
        go []
      end
    else []
  in
  expect_kw st "end";
  let end_name = ident st in
  if String.lowercase_ascii end_name <> String.lowercase_ascii name then
    fail st (Fmt.str "'end %s;' does not match component type %s" end_name name);
  expect st Lexer.SEMI "';' after end";
  {
    Ast.ct_category = category;
    ct_name = name;
    ct_features = features;
    ct_props = props;
    ct_loc = loc;
  }

let section_keywords =
  [ "subcomponents"; "connections"; "properties"; "modes"; "end"; "calls"; "flows" ]

let parse_impl_body st category type_name impl_name loc : Ast.component_impl =
  let subs =
    if accept_kw st "subcomponents" then
      if accept_none_section st then []
      else begin
        let rec go acc =
          match peek st with
          | Lexer.IDENT s
            when not (List.mem (String.lowercase_ascii s) section_keywords) ->
              go (parse_subcomponent st :: acc)
          | _ -> List.rev acc
        in
        go []
      end
    else []
  in
  let conns =
    if accept_kw st "connections" then
      if accept_none_section st then []
      else begin
        let rec go acc =
          match peek st with
          | Lexer.IDENT s
            when not (List.mem (String.lowercase_ascii s) section_keywords) ->
              go (parse_connection st :: acc)
          | _ -> List.rev acc
        in
        go []
      end
    else []
  in
  let modes, transitions =
    if accept_kw st "modes" then
      if accept_none_section st then ([], [])
      else begin
        let rec go ms ts =
          match peek st with
          | Lexer.IDENT s
            when not (List.mem (String.lowercase_ascii s) section_keywords)
            -> (
              match parse_mode_item st with
              | Mode_decl m -> go (m :: ms) ts
              | Mode_trans t -> go ms (t :: ts))
          | _ -> (List.rev ms, List.rev ts)
        in
        go [] []
      end
    else ([], [])
  in
  let props =
    if accept_kw st "properties" then
      if accept_none_section st then []
      else begin
        let rec go acc =
          match peek st with
          | Lexer.IDENT s when String.lowercase_ascii s <> "end" ->
              go (parse_prop st :: acc)
          | _ -> List.rev acc
        in
        go []
      end
    else []
  in
  expect_kw st "end";
  let end_type = ident st in
  expect st Lexer.DOT "'.' in end name of an implementation";
  let end_impl = ident st in
  if
    String.lowercase_ascii end_type <> String.lowercase_ascii type_name
    || String.lowercase_ascii end_impl <> String.lowercase_ascii impl_name
  then
    fail st
      (Fmt.str "'end %s.%s;' does not match implementation %s.%s" end_type
         end_impl type_name impl_name);
  expect st Lexer.SEMI "';' after end";
  {
    Ast.ci_category = category;
    ci_type_name = type_name;
    ci_impl_name = impl_name;
    ci_subcomponents = subs;
    ci_connections = conns;
    ci_modes = modes;
    ci_transitions = transitions;
    ci_props = props;
    ci_loc = loc;
  }

let parse_declaration st : Ast.declaration =
  let loc = peek_loc st in
  let category = parse_category st in
  if accept_kw st "implementation" then begin
    let type_name = ident st in
    expect st Lexer.DOT "'.' in implementation name";
    let impl_name = ident st in
    Ast.Impl_decl (parse_impl_body st category type_name impl_name loc)
  end
  else begin
    let name = ident st in
    (* "extends" clauses are accepted and flattened by recording only the
       parent name; full refinement semantics is out of scope *)
    if accept_kw st "extends" then ignore (parse_dotted_path st);
    Ast.Type_decl (parse_type_body st category name loc)
  end

let parse_model_tokens st : Ast.model =
  let decls = ref [] in
  let rec go () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.IDENT s when String.lowercase_ascii s = "package" ->
        advance st;
        ignore (parse_dotted_path st);
        ignore (accept_kw st "public");
        go_in_package ();
        go ()
    | _ ->
        decls := parse_declaration st :: !decls;
        go ()
  and go_in_package () =
    if is_kw st "end" then begin
      advance st;
      ignore (parse_dotted_path st);
      expect st Lexer.SEMI "';' after package end"
    end
    else if accept_kw st "private" then go_in_package ()
    else begin
      decls := parse_declaration st :: !decls;
      go_in_package ()
    end
  in
  go ();
  { Ast.decls = List.rev !decls }

let parse_string input =
  let toks = Array.of_list (Lexer.tokenize input) in
  parse_model_tokens { toks; pos = 0 }

let parse_file path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string contents
