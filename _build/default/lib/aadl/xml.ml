(* A small, dependency-free XML reader/writer, sufficient for the instance
   interchange format (Instance_xml).  Supports elements, attributes,
   text, comments, processing instructions, CDATA, self-closing tags and
   the five predefined entities. *)

type t =
  | Element of string * (string * string) list * t list
  | Text of string

exception Error of string * int
(** message, character offset *)

(* plain substring search *)
module Str_find = struct
  let find haystack needle from =
    let n = String.length haystack and m = String.length needle in
    let rec go i =
      if i + m > n then None
      else if String.sub haystack i m = needle then Some i
      else go (i + 1)
    in
    go from
end

(* {1 Parsing} *)

type state = { input : string; mutable pos : int }

let peek st =
  if st.pos < String.length st.input then Some st.input.[st.pos] else None

let fail st msg = raise (Error (msg, st.pos))

let starts_with st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.input
  && String.sub st.input st.pos n = prefix

let skip st n = st.pos <- st.pos + n

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      skip st 1;
      skip_ws st
  | _ -> ()

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = ':' || c = '.'

let parse_name st =
  let start = st.pos in
  while (match peek st with Some c -> is_name_char c | None -> false) do
    skip st 1
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.input start (st.pos - start)

let decode_entities st raw =
  let buf = Buffer.create (String.length raw) in
  let n = String.length raw in
  let i = ref 0 in
  while !i < n do
    if raw.[!i] = '&' then begin
      match String.index_from_opt raw !i ';' with
      | None -> fail st "unterminated entity"
      | Some j ->
          let entity = String.sub raw (!i + 1) (j - !i - 1) in
          (match entity with
          | "lt" -> Buffer.add_char buf '<'
          | "gt" -> Buffer.add_char buf '>'
          | "amp" -> Buffer.add_char buf '&'
          | "quot" -> Buffer.add_char buf '"'
          | "apos" -> Buffer.add_char buf '\''
          | e -> fail st ("unknown entity &" ^ e ^ ";"));
          i := j + 1
    end
    else begin
      Buffer.add_char buf raw.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let parse_attr st =
  let name = parse_name st in
  skip_ws st;
  (match peek st with
  | Some '=' -> skip st 1
  | _ -> fail st "expected '=' after attribute name");
  skip_ws st;
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) ->
        skip st 1;
        q
    | _ -> fail st "expected a quoted attribute value"
  in
  let start = st.pos in
  while (match peek st with Some c -> c <> quote | None -> false) do
    skip st 1
  done;
  if peek st = None then fail st "unterminated attribute value";
  let raw = String.sub st.input start (st.pos - start) in
  skip st 1;
  (name, decode_entities st raw)

let rec skip_misc st =
  skip_ws st;
  if starts_with st "<?" then begin
    (match Str_find.find st.input "?>" st.pos with
    | Some j -> st.pos <- j + 2
    | None -> fail st "unterminated processing instruction");
    skip_misc st
  end
  else if starts_with st "<!--" then begin
    (match Str_find.find st.input "-->" st.pos with
    | Some j -> st.pos <- j + 3
    | None -> fail st "unterminated comment");
    skip_misc st
  end

and parse_element st =
  if not (starts_with st "<") then fail st "expected '<'";
  skip st 1;
  let name = parse_name st in
  let rec attrs acc =
    skip_ws st;
    match peek st with
    | Some '/' | Some '>' -> List.rev acc
    | Some c when is_name_char c -> attrs (parse_attr st :: acc)
    | _ -> fail st "malformed attribute list"
  in
  let attributes = attrs [] in
  if starts_with st "/>" then begin
    skip st 2;
    Element (name, attributes, [])
  end
  else begin
    (match peek st with
    | Some '>' -> skip st 1
    | _ -> fail st "expected '>'");
    let children = parse_content st in
    if not (starts_with st "</") then fail st "expected a closing tag";
    skip st 2;
    let close = parse_name st in
    if close <> name then
      fail st (Fmt.str "mismatched closing tag </%s> for <%s>" close name);
    skip_ws st;
    (match peek st with
    | Some '>' -> skip st 1
    | _ -> fail st "expected '>' after closing tag");
    Element (name, attributes, children)
  end

and parse_content st =
  let items = ref [] in
  let buf = Buffer.create 16 in
  let flush_text () =
    let text = Buffer.contents buf in
    Buffer.clear buf;
    if String.trim text <> "" then
      items := Text (decode_entities st (String.trim text)) :: !items
  in
  let rec go () =
    match peek st with
    | None -> flush_text ()
    | Some '<' ->
        if starts_with st "</" then flush_text ()
        else if starts_with st "<!--" then begin
          flush_text ();
          (match Str_find.find st.input "-->" st.pos with
          | Some j -> st.pos <- j + 3
          | None -> fail st "unterminated comment");
          go ()
        end
        else if starts_with st "<![CDATA[" then begin
          (* CDATA content is verbatim: no entity decoding, no trimming *)
          flush_text ();
          (match Str_find.find st.input "]]>" st.pos with
          | Some j ->
              items :=
                Text (String.sub st.input (st.pos + 9) (j - st.pos - 9))
                :: !items;
              st.pos <- j + 3
          | None -> fail st "unterminated CDATA");
          go ()
        end
        else begin
          flush_text ();
          items := parse_element st :: !items;
          go ()
        end
    | Some c ->
        Buffer.add_char buf c;
        skip st 1;
        go ()
  in
  go ();
  List.rev !items

let parse_string input =
  let st = { input; pos = 0 } in
  skip_misc st;
  let root = parse_element st in
  skip_misc st;
  skip_ws st;
  if st.pos <> String.length input then fail st "trailing content";
  root

(* {1 Serialization} *)

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp ppf = function
  | Text s -> Fmt.string ppf (escape_text s)
  | Element (name, attrs, children) ->
      let pp_attr ppf (k, v) = Fmt.pf ppf " %s=\"%s\"" k (escape_attr v) in
      if children = [] then
        Fmt.pf ppf "<%s%a/>" name Fmt.(list ~sep:nop pp_attr) attrs
      else
        Fmt.pf ppf "@[<v 2><%s%a>@,%a@]@,</%s>" name
          Fmt.(list ~sep:nop pp_attr)
          attrs
          Fmt.(list ~sep:cut pp)
          children name

let to_string x = Fmt.str "%a" pp x

(* {1 Accessors} *)

let attr name = function
  | Element (_, attrs, _) -> List.assoc_opt name attrs
  | Text _ -> None

let children name = function
  | Element (_, _, kids) ->
      List.filter
        (function Element (n, _, _) -> n = name | Text _ -> false)
        kids
  | Text _ -> []

let child name x = match children name x with c :: _ -> Some c | [] -> None

let all_children = function
  | Element (_, _, kids) ->
      List.filter (function Element _ -> true | Text _ -> false) kids
  | Text _ -> []

let tag = function Element (n, _, _) -> Some n | Text _ -> None
