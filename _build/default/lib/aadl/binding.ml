(* Resolution of deployment bindings: threads to processors
   (Actual_Processor_Binding) and semantic connections to buses
   (Actual_Connection_Binding).  Binding properties may be declared on the
   component itself, via contained associations in enclosing
   implementations (already merged by instantiation), or on the traversed
   declared connections. *)

exception Unbound of string

let processor_of ~root (thread : Instance.t) =
  match Props.actual_processor_binding thread.Instance.props with
  | None -> None
  | Some ref_path -> (
      match
        Instance.resolve_reference ~root ~from:thread.Instance.path ref_path
      with
      | Some inst when inst.Instance.category = Ast.Processor -> Some inst
      | Some inst ->
          raise
            (Unbound
               (Fmt.str "%a: processor binding resolves to a %a"
                  Instance.pp_path thread.Instance.path Ast.pp_category
                  inst.Instance.category))
      | None ->
          raise
            (Unbound
               (Fmt.str "%a: processor binding reference %a does not resolve"
                  Instance.pp_path thread.Instance.path Instance.pp_path
                  ref_path)))

let processor_of_exn ~root thread =
  match processor_of ~root thread with
  | Some p -> p
  | None ->
      raise
        (Unbound
           (Fmt.str "thread %a is not bound to a processor" Instance.pp_path
              thread.Instance.path))

(* The bus a semantic connection is mapped to, if any: look at the binding
   property of each traversed declared connection (innermost declaration
   wins), resolving the reference from the declaring implementation. *)
let bus_of ~root (sc : Semconn.t) =
  let of_link (l : Semconn.link) =
    match Props.actual_connection_binding l.Semconn.conn.Ast.conn_props with
    | None -> None
    | Some ref_path -> (
        match
          Instance.resolve_reference ~root ~from:l.Semconn.declared_in
            ref_path
        with
        | Some inst when inst.Instance.category = Ast.Bus -> Some inst
        | Some inst ->
            raise
              (Unbound
                 (Fmt.str "connection binding resolves to a %a, not a bus"
                    Ast.pp_category inst.Instance.category))
        | None ->
            raise
              (Unbound
                 (Fmt.str "connection binding reference %a does not resolve"
                    Instance.pp_path ref_path)))
  in
  List.fold_left
    (fun acc l -> match of_link l with Some b -> Some b | None -> acc)
    None sc.Semconn.links

(* Threads grouped by their bound processor, in instance order: the outer
   loop of the paper's Algorithm 1. *)
let threads_by_processor ~root =
  let threads = Instance.threads root in
  let procs = Instance.processors root in
  List.map
    (fun (proc : Instance.t) ->
      let bound =
        List.filter
          (fun th ->
            match processor_of ~root th with
            | Some p -> p.Instance.path = proc.Instance.path
            | None -> false)
          threads
      in
      (proc, bound))
    procs
