(* Declarative AADL abstract syntax.

   This models the subset of AS5506 the paper's translation consumes:
   component types and implementations for the software and execution
   platform categories, port features, port connections, subcomponents,
   modes (parsed but not translated, matching the paper's scope), and
   property associations including [applies to] binding declarations. *)

type srcloc = { line : int; col : int }

let no_loc = { line = 0; col = 0 }
let pp_srcloc ppf l = Fmt.pf ppf "line %d, col %d" l.line l.col

type category =
  | System
  | Process
  | Thread_group
  | Thread
  | Subprogram
  | Data
  | Processor
  | Memory
  | Bus
  | Device

let category_to_string = function
  | System -> "system"
  | Process -> "process"
  | Thread_group -> "thread group"
  | Thread -> "thread"
  | Subprogram -> "subprogram"
  | Data -> "data"
  | Processor -> "processor"
  | Memory -> "memory"
  | Bus -> "bus"
  | Device -> "device"

let pp_category ppf c = Fmt.string ppf (category_to_string c)

let is_platform = function
  | Processor | Memory | Bus | Device -> true
  | System | Process | Thread_group | Thread | Subprogram | Data -> false

(* {1 Property values} *)

type pvalue =
  | Pint of int
  | Preal of float
  | Pbool of bool
  | Pstring of string
  | Penum of string  (** unquoted identifier, e.g. [Periodic] *)
  | Ptime of Time.t
  | Prange of pvalue * pvalue  (** e.g. [1 ms .. 2 ms] *)
  | Preference of string list  (** [reference (a.b.c)] *)
  | Plist of pvalue list

type prop = {
  pname : string;  (** lowercased property name, possibly qualified *)
  pvalue : pvalue;
  applies_to : string list list;
      (** [applies to sub.thread, other] — empty for ordinary
          associations *)
  ploc : srcloc;
}

let rec pp_pvalue ppf = function
  | Pint n -> Fmt.int ppf n
  | Preal f -> Fmt.float ppf f
  | Pbool b -> Fmt.bool ppf b
  | Pstring s -> Fmt.pf ppf "%S" s
  | Penum s -> Fmt.string ppf s
  | Ptime t -> Time.pp ppf t
  | Prange (a, b) -> Fmt.pf ppf "%a .. %a" pp_pvalue a pp_pvalue b
  | Preference path ->
      Fmt.pf ppf "reference (%a)" Fmt.(list ~sep:(any ".") string) path
  | Plist vs -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma pp_pvalue) vs

let pp_prop ppf p =
  let pp_applies ppf = function
    | [] -> ()
    | paths ->
        Fmt.pf ppf " applies to %a"
          Fmt.(list ~sep:comma (list ~sep:(any ".") string))
          paths
  in
  Fmt.pf ppf "%s => %a%a;" p.pname pp_pvalue p.pvalue pp_applies p.applies_to

(* {1 Features} *)

type direction = In | Out | In_out

let pp_direction ppf = function
  | In -> Fmt.string ppf "in"
  | Out -> Fmt.string ppf "out"
  | In_out -> Fmt.string ppf "in out"

type port_kind = Data_port | Event_port | Event_data_port

let pp_port_kind ppf = function
  | Data_port -> Fmt.string ppf "data port"
  | Event_port -> Fmt.string ppf "event port"
  | Event_data_port -> Fmt.string ppf "event data port"

type feature_kind =
  | Port of direction * port_kind * string option
      (** direction, port kind, optional data classifier *)
  | Data_access of direction * string option
      (** requires/provides data access; [In]=requires, [Out]=provides *)

type feature = {
  fname : string;
  fkind : feature_kind;
  fprops : prop list;
  floc : srcloc;
}

let pp_feature ppf f =
  match f.fkind with
  | Port (d, k, cls) ->
      Fmt.pf ppf "%s: %a %a%a;" f.fname pp_direction d pp_port_kind k
        Fmt.(option (any " " ++ string))
        cls
  | Data_access (In, cls) ->
      Fmt.pf ppf "%s: requires data access%a;" f.fname
        Fmt.(option (any " " ++ string))
        cls
  | Data_access ((Out | In_out), cls) ->
      Fmt.pf ppf "%s: provides data access%a;" f.fname
        Fmt.(option (any " " ++ string))
        cls

(* {1 Component types} *)

type component_type = {
  ct_category : category;
  ct_name : string;
  ct_features : feature list;
  ct_props : prop list;
  ct_loc : srcloc;
}

(* {1 Component implementations} *)

type subcomponent = {
  sub_name : string;
  sub_category : category;
  sub_classifier : string option;
      (** ["sensor"] or ["sensor.impl"]; [None] for abstract platform
          subcomponents declared without a classifier *)
  sub_props : prop list;
  sub_modes : string list;
      (** [in modes (...)]: modes of the enclosing implementation in which
          this subcomponent is active; empty = active in all modes *)
  sub_loc : srcloc;
}

type conn_end = {
  ce_sub : string option;  (** subcomponent name, [None] = own feature *)
  ce_feature : string;
}

let pp_conn_end ppf e =
  match e.ce_sub with
  | Some s -> Fmt.pf ppf "%s.%s" s e.ce_feature
  | None -> Fmt.string ppf e.ce_feature

type conn_kind = Port_connection | Access_connection

type connection = {
  conn_name : string option;
  conn_kind : conn_kind;
  conn_src : conn_end;
  conn_dst : conn_end;
  conn_bidirectional : bool;  (** [<->] vs [->] *)
  conn_props : prop list;
  conn_modes : string list;  (** [in modes (...)]; empty = all modes *)
  conn_loc : srcloc;
}

type mode = { mode_name : string; mode_initial : bool; mode_loc : srcloc }

type mode_transition = {
  mt_src : string;
  mt_dst : string;
  mt_triggers : conn_end list;
  mt_loc : srcloc;
}

type component_impl = {
  ci_category : category;
  ci_type_name : string;  (** the component type being implemented *)
  ci_impl_name : string;  (** the short implementation name *)
  ci_subcomponents : subcomponent list;
  ci_connections : connection list;
  ci_modes : mode list;
  ci_transitions : mode_transition list;
  ci_props : prop list;
  ci_loc : srcloc;
}

let impl_full_name ci = ci.ci_type_name ^ "." ^ ci.ci_impl_name

(* {1 Models} *)

type declaration = Type_decl of component_type | Impl_decl of component_impl

type model = { decls : declaration list }

let decl_name = function
  | Type_decl t -> t.ct_name
  | Impl_decl i -> impl_full_name i

let pp_section ppf (keyword, pp_item, items) =
  if items <> [] then
    Fmt.pf ppf "%s@,  @[<v>%a@]@," keyword (Fmt.list ~sep:Fmt.cut pp_item)
      items

let pp_declaration ppf = function
  | Type_decl t ->
      Fmt.pf ppf "@[<v>%a %s@," pp_category t.ct_category t.ct_name;
      pp_section ppf ("features", pp_feature, t.ct_features);
      pp_section ppf ("properties", pp_prop, t.ct_props);
      Fmt.pf ppf "end %s;@]" t.ct_name
  | Impl_decl i ->
      let pp_sub ppf s =
        Fmt.pf ppf "%s: %a%a;" s.sub_name pp_category s.sub_category
          Fmt.(option (any " " ++ string))
          s.sub_classifier
      in
      let pp_conn ppf c =
        let arrow = if c.conn_bidirectional then "<->" else "->" in
        let kw =
          match c.conn_kind with
          | Port_connection -> "port"
          | Access_connection -> "data access"
        in
        match c.conn_name with
        | Some n ->
            Fmt.pf ppf "%s: %s %a %s %a;" n kw pp_conn_end c.conn_src arrow
              pp_conn_end c.conn_dst
        | None ->
            Fmt.pf ppf "%s %a %s %a;" kw pp_conn_end c.conn_src arrow
              pp_conn_end c.conn_dst
      in
      Fmt.pf ppf "@[<v>%a implementation %s@," pp_category i.ci_category
        (impl_full_name i);
      pp_section ppf ("subcomponents", pp_sub, i.ci_subcomponents);
      pp_section ppf ("connections", pp_conn, i.ci_connections);
      pp_section ppf ("properties", pp_prop, i.ci_props);
      Fmt.pf ppf "end %s;@]" (impl_full_name i)

let pp_model ppf m =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(cut ++ cut) pp_declaration) m.decls
