(** Instantiation of a declarative model into an instance tree. *)

exception Error of string

val instantiate : Ast.model -> root:string -> Instance.t
(** [instantiate model ~root] expands the implementation named [root]
    (["type.impl"], or a bare type name with a unique implementation).
    @raise Error on unknown classifiers, category mismatches or cycles. *)

val of_string : ?root:string -> string -> Instance.t
(** Parse and instantiate in one step.  Without [root], picks the unique
    system implementation not used as a subcomponent. *)
