(** A minimal XML reader/writer (elements, attributes, text, comments,
    CDATA, predefined entities) for the instance interchange format. *)

type t =
  | Element of string * (string * string) list * t list
  | Text of string

exception Error of string * int

val parse_string : string -> t
(** @raise Error with the character offset on malformed input. *)

val pp : t Fmt.t
val to_string : t -> string
val attr : string -> t -> string option
val children : string -> t -> t list
val child : string -> t -> t option
val all_children : t -> t list
val tag : t -> string option
