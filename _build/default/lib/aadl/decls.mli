(** Symbol table over parsed declarations. *)

exception Duplicate_declaration of string
exception Unknown_classifier of string
exception Category_mismatch of string * Ast.category * Ast.category

type t

val of_model : Ast.model -> t
val find_type_opt : t -> string -> Ast.component_type option
val find_impl_opt : t -> string -> Ast.component_impl option
val find_type : t -> string -> Ast.component_type
val find_impl : t -> string -> Ast.component_impl

type classifier =
  | Type_only of Ast.component_type
  | Type_and_impl of Ast.component_type * Ast.component_impl

val resolve_classifier : t -> string -> classifier
(** Resolve ["name"] to a type or ["name.impl"] to a type/implementation
    pair. *)

val classifier_category : classifier -> Ast.category
val check_category : string -> Ast.category -> classifier -> unit
val types : t -> Ast.component_type list
val impls : t -> Ast.component_impl list
