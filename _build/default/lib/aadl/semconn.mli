(** Resolution of semantic port and access connections over the instance
    model (ultimate sources and destinations, paper Section 2). *)

type port_ref = { inst : string list; feature : string }

val pp_port_ref : port_ref Fmt.t

type link = { declared_in : string list; conn : Ast.connection }

type t = {
  kind : Ast.port_kind;
  src : port_ref;
  dst : port_ref;
  links : link list;
}

val pp : t Fmt.t

val props : t -> Ast.prop list
(** Properties of every traversed declared connection, source link first
    (later associations take precedence under {!Props.find}). *)

exception Unresolved of string

val resolve : Instance.t -> t list
(** Every semantic port connection of the instance model: one per
    (ultimate source port, reachable ultimate destination port) pair. *)

val is_event_like : t -> bool
(** Event and event-data connections: they dispatch aperiodic threads and
    are queued at the destination; pure data connections are not. *)

val incoming : t list -> Instance.t -> t list
val outgoing : t list -> Instance.t -> t list

val dst_feature : Instance.t -> t -> Ast.feature option
(** The feature at the ultimate destination, whose [Queue_Size] and
    [Overflow_Handling_Protocol] govern the connection's queue process. *)

val src_feature : Instance.t -> t -> Ast.feature option

val name : t -> string
(** Stable readable identifier used for ACSR label generation. *)

type access = {
  thread : string list;
  access_feature : string;
  data : string list;
  access_props : Ast.prop list;
}

val resolve_access : Instance.t -> access list
(** Semantic access connections from thread [requires data access]
    features to shared data components. *)
