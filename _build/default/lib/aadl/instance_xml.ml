(* An XML interchange format for instance models, in the spirit of
   OSATE's XML-based internal representation that the paper's tool chain
   consumes ("AADL standard is complemented by ... OSATE, which supports
   an XML-based internal representation of AADL models", Section 1).

   The schema is self-defined (OSATE's AAXL is Eclipse-specific) and
   round-trips every field of {!Instance.t}:

   {v
   <instance name="root.impl" category="system">
     <subcomponent name="cpu1" category="processor" classifier="cpu">
       <property name="scheduling_protocol"><enum v="EDF_PROTOCOL"/></property>
     </subcomponent>
     <subcomponent name="a" category="thread" in_modes="m1 m2">
       <feature name="outp" direction="out" kind="data_port"/>
       ...
     </subcomponent>
     <connection kind="port" src="a.outp" dst="b.inp"/>
     <mode name="m1" initial="true"/>
     <transition src="m1" dst="m2"><trigger ref="ctl.alarm"/></transition>
   </instance>
   v} *)

exception Error of string

let fail fmt = Fmt.kstr (fun m -> raise (Error m)) fmt

(* {1 Property values} *)

let rec pvalue_to_xml (v : Ast.pvalue) : Xml.t =
  match v with
  | Ast.Pint n -> Xml.Element ("int", [ ("v", string_of_int n) ], [])
  | Ast.Preal f -> Xml.Element ("real", [ ("v", string_of_float f) ], [])
  | Ast.Pbool b -> Xml.Element ("bool", [ ("v", string_of_bool b) ], [])
  | Ast.Pstring s -> Xml.Element ("string", [ ("v", s) ], [])
  | Ast.Penum s -> Xml.Element ("enum", [ ("v", s) ], [])
  | Ast.Ptime t ->
      Xml.Element ("time", [ ("ns", string_of_int (Time.to_ns t)) ], [])
  | Ast.Prange (lo, hi) ->
      Xml.Element ("range", [], [ pvalue_to_xml lo; pvalue_to_xml hi ])
  | Ast.Preference path ->
      Xml.Element ("reference", [ ("path", String.concat "." path) ], [])
  | Ast.Plist vs -> Xml.Element ("list", [], List.map pvalue_to_xml vs)

let req_attr what name x =
  match Xml.attr name x with
  | Some v -> v
  | None -> fail "%s: missing attribute %s" what name

let rec pvalue_of_xml (x : Xml.t) : Ast.pvalue =
  match Xml.tag x with
  | Some "int" -> Ast.Pint (int_of_string (req_attr "int" "v" x))
  | Some "real" -> Ast.Preal (float_of_string (req_attr "real" "v" x))
  | Some "bool" -> Ast.Pbool (bool_of_string (req_attr "bool" "v" x))
  | Some "string" -> Ast.Pstring (req_attr "string" "v" x)
  | Some "enum" -> Ast.Penum (req_attr "enum" "v" x)
  | Some "time" ->
      Ast.Ptime (Time.of_ns (int_of_string (req_attr "time" "ns" x)))
  | Some "range" -> (
      match Xml.all_children x with
      | [ lo; hi ] -> Ast.Prange (pvalue_of_xml lo, pvalue_of_xml hi)
      | _ -> fail "range: expected two children")
  | Some "reference" ->
      Ast.Preference
        (String.split_on_char '.' (req_attr "reference" "path" x))
  | Some "list" -> Ast.Plist (List.map pvalue_of_xml (Xml.all_children x))
  | Some t -> fail "unknown property value element <%s>" t
  | None -> fail "expected a property value element"

let prop_to_xml (p : Ast.prop) : Xml.t =
  Xml.Element ("property", [ ("name", p.Ast.pname) ], [ pvalue_to_xml p.Ast.pvalue ])

let prop_of_xml (x : Xml.t) : Ast.prop =
  let pname = req_attr "property" "name" x in
  match Xml.all_children x with
  | [ v ] ->
      {
        Ast.pname;
        pvalue = pvalue_of_xml v;
        applies_to = [];
        ploc = Ast.no_loc;
      }
  | _ -> fail "property %s: expected one value child" pname

(* {1 Features} *)

let direction_to_string = function
  | Ast.In -> "in"
  | Ast.Out -> "out"
  | Ast.In_out -> "in_out"

let direction_of_string = function
  | "in" -> Ast.In
  | "out" -> Ast.Out
  | "in_out" -> Ast.In_out
  | d -> fail "unknown direction %s" d

let port_kind_to_string = function
  | Ast.Data_port -> "data_port"
  | Ast.Event_port -> "event_port"
  | Ast.Event_data_port -> "event_data_port"

let port_kind_of_string = function
  | "data_port" -> Ast.Data_port
  | "event_port" -> Ast.Event_port
  | "event_data_port" -> Ast.Event_data_port
  | k -> fail "unknown port kind %s" k

let feature_to_xml (f : Ast.feature) : Xml.t =
  let kind_attrs =
    match f.Ast.fkind with
    | Ast.Port (dir, kind, cls) ->
        [
          ("direction", direction_to_string dir);
          ("kind", port_kind_to_string kind);
        ]
        @ (match cls with Some c -> [ ("classifier", c) ] | None -> [])
    | Ast.Data_access (dir, cls) ->
        [ ("direction", direction_to_string dir); ("kind", "data_access") ]
        @ (match cls with Some c -> [ ("classifier", c) ] | None -> [])
  in
  Xml.Element
    ( "feature",
      ("name", f.Ast.fname) :: kind_attrs,
      List.map prop_to_xml f.Ast.fprops )

let feature_of_xml (x : Xml.t) : Ast.feature =
  let fname = req_attr "feature" "name" x in
  let dir = direction_of_string (req_attr "feature" "direction" x) in
  let cls = Xml.attr "classifier" x in
  let fkind =
    match req_attr "feature" "kind" x with
    | "data_access" -> Ast.Data_access (dir, cls)
    | k -> Ast.Port (dir, port_kind_of_string k, cls)
  in
  {
    Ast.fname;
    fkind;
    fprops = List.map prop_of_xml (Xml.children "property" x);
    floc = Ast.no_loc;
  }

(* {1 Connections, modes, transitions} *)

let conn_end_to_string (e : Ast.conn_end) =
  match e.Ast.ce_sub with
  | Some sub -> sub ^ "." ^ e.Ast.ce_feature
  | None -> e.Ast.ce_feature

let conn_end_of_string s : Ast.conn_end =
  match String.index_opt s '.' with
  | Some i ->
      {
        Ast.ce_sub = Some (String.sub s 0 i);
        ce_feature = String.sub s (i + 1) (String.length s - i - 1);
      }
  | None -> { Ast.ce_sub = None; ce_feature = s }

let connection_to_xml (c : Ast.connection) : Xml.t =
  let attrs =
    (match c.Ast.conn_name with Some n -> [ ("name", n) ] | None -> [])
    @ [
        ( "kind",
          match c.Ast.conn_kind with
          | Ast.Port_connection -> "port"
          | Ast.Access_connection -> "access" );
        ("src", conn_end_to_string c.Ast.conn_src);
        ("dst", conn_end_to_string c.Ast.conn_dst);
      ]
    @ (if c.Ast.conn_bidirectional then [ ("bidirectional", "true") ] else [])
    @
    if c.Ast.conn_modes <> [] then
      [ ("in_modes", String.concat " " c.Ast.conn_modes) ]
    else []
  in
  Xml.Element ("connection", attrs, List.map prop_to_xml c.Ast.conn_props)

let connection_of_xml (x : Xml.t) : Ast.connection =
  {
    Ast.conn_name = Xml.attr "name" x;
    conn_kind =
      (match req_attr "connection" "kind" x with
      | "port" -> Ast.Port_connection
      | "access" -> Ast.Access_connection
      | k -> fail "unknown connection kind %s" k);
    conn_src = conn_end_of_string (req_attr "connection" "src" x);
    conn_dst = conn_end_of_string (req_attr "connection" "dst" x);
    conn_bidirectional = Xml.attr "bidirectional" x = Some "true";
    conn_props = List.map prop_of_xml (Xml.children "property" x);
    conn_modes =
      (match Xml.attr "in_modes" x with
      | Some s -> String.split_on_char ' ' s
      | None -> []);
    conn_loc = Ast.no_loc;
  }

let mode_to_xml (m : Ast.mode) : Xml.t =
  Xml.Element
    ( "mode",
      ("name", m.Ast.mode_name)
      :: (if m.Ast.mode_initial then [ ("initial", "true") ] else []),
      [] )

let mode_of_xml (x : Xml.t) : Ast.mode =
  {
    Ast.mode_name = req_attr "mode" "name" x;
    mode_initial = Xml.attr "initial" x = Some "true";
    mode_loc = Ast.no_loc;
  }

let transition_to_xml (t : Ast.mode_transition) : Xml.t =
  Xml.Element
    ( "transition",
      [ ("src", t.Ast.mt_src); ("dst", t.Ast.mt_dst) ],
      List.map
        (fun trig ->
          Xml.Element ("trigger", [ ("ref", conn_end_to_string trig) ], []))
        t.Ast.mt_triggers )

let transition_of_xml (x : Xml.t) : Ast.mode_transition =
  {
    Ast.mt_src = req_attr "transition" "src" x;
    mt_dst = req_attr "transition" "dst" x;
    mt_triggers =
      List.map
        (fun trig -> conn_end_of_string (req_attr "trigger" "ref" trig))
        (Xml.children "trigger" x);
    mt_loc = Ast.no_loc;
  }

(* {1 Instances} *)

let category_of_string s =
  match String.lowercase_ascii s with
  | "system" -> Ast.System
  | "process" -> Ast.Process
  | "thread_group" -> Ast.Thread_group
  | "thread" -> Ast.Thread
  | "subprogram" -> Ast.Subprogram
  | "data" -> Ast.Data
  | "processor" -> Ast.Processor
  | "memory" -> Ast.Memory
  | "bus" -> Ast.Bus
  | "device" -> Ast.Device
  | c -> fail "unknown category %s" c

let category_to_string c =
  match c with
  | Ast.Thread_group -> "thread_group"
  | c -> Ast.category_to_string c

let rec instance_to_xml ~tag (inst : Instance.t) : Xml.t =
  let attrs =
    [ ("name", inst.Instance.name);
      ("category", category_to_string inst.Instance.category);
    ]
    @ (match inst.Instance.classifier with
      | Some c -> [ ("classifier", c) ]
      | None -> [])
    @
    if inst.Instance.in_modes <> [] then
      [ ("in_modes", String.concat " " inst.Instance.in_modes) ]
    else []
  in
  Xml.Element
    ( tag,
      attrs,
      List.map feature_to_xml inst.Instance.features
      @ List.map prop_to_xml inst.Instance.props
      @ List.map connection_to_xml inst.Instance.connections
      @ List.map mode_to_xml inst.Instance.modes
      @ List.map transition_to_xml inst.Instance.transitions
      @ List.map (instance_to_xml ~tag:"subcomponent") inst.Instance.children
    )

let to_xml (root : Instance.t) : Xml.t = instance_to_xml ~tag:"instance" root

let rec instance_of_xml ~path (x : Xml.t) : Instance.t =
  let name = req_attr "instance" "name" x in
  let this_path = if path = None then [] else Option.get path @ [ name ] in
  {
    Instance.name;
    path = this_path;
    category = category_of_string (req_attr "instance" "category" x);
    classifier = Xml.attr "classifier" x;
    features = List.map feature_of_xml (Xml.children "feature" x);
    props = List.map prop_of_xml (Xml.children "property" x);
    connections = List.map connection_of_xml (Xml.children "connection" x);
    modes = List.map mode_of_xml (Xml.children "mode" x);
    transitions = List.map transition_of_xml (Xml.children "transition" x);
    in_modes =
      (match Xml.attr "in_modes" x with
      | Some s -> String.split_on_char ' ' s
      | None -> []);
    children =
      List.map
        (instance_of_xml ~path:(Some this_path))
        (Xml.children "subcomponent" x);
  }

let of_xml (x : Xml.t) : Instance.t = instance_of_xml ~path:None x

let to_string root = Xml.to_string (to_xml root)

let of_string s =
  match Xml.parse_string s with
  | x -> of_xml x
  | exception Xml.Error (msg, pos) -> fail "XML error at offset %d: %s" pos msg

let write_file path root =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "<?xml version=\"1.0\"?>\n";
      output_string oc (to_string root);
      output_string oc "\n")

let read_file path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string contents
