(* Semantic connection resolution.

   A semantic connection starts at an ultimate source (a port of a thread
   or device instance), follows declared connections up the containment
   hierarchy through the ports of enclosing components, crosses one sibling
   connection, and descends to the ultimate destination (paper, Section 2).
   We implement this as reachability over the directed graph whose nodes
   are (instance path, feature) pairs and whose edges are the declared
   connections of every implementation in the instance tree. *)

type port_ref = { inst : string list; feature : string }

let pp_port_ref ppf r =
  if r.inst = [] then Fmt.string ppf r.feature
  else Fmt.pf ppf "%a.%s" Instance.pp_path r.inst r.feature

type link = { declared_in : string list; conn : Ast.connection }

type t = {
  kind : Ast.port_kind;  (** port kind of the ultimate source feature *)
  src : port_ref;
  dst : port_ref;
  links : link list;  (** traversed declared connections, source first *)
}

let pp ppf sc =
  Fmt.pf ppf "%a -> %a (%a, %d links)" pp_port_ref sc.src pp_port_ref sc.dst
    Ast.pp_port_kind sc.kind (List.length sc.links)

(* All property associations applying to the semantic connection: the
   properties of each traversed declared connection, source link first. *)
let props sc = List.concat_map (fun l -> l.conn.Ast.conn_props) sc.links

exception Unresolved of string

let lc = String.lowercase_ascii
let node_key (path, feature) = (List.map lc path, lc feature)

(* Where does a connection end refer to, seen from instance [inst]? *)
let end_node (inst : Instance.t) (e : Ast.conn_end) =
  match e.Ast.ce_sub with
  | Some sub -> (inst.Instance.path @ [ sub ], e.Ast.ce_feature)
  | None -> (inst.Instance.path, e.Ast.ce_feature)

type graph = {
  edges : ((string list * string), (string list * string) * link) Hashtbl.t;
  root : Instance.t;
}

let build_graph root =
  let edges = Hashtbl.create 64 in
  Instance.iter
    (fun inst ->
      List.iter
        (fun (conn : Ast.connection) ->
          match conn.Ast.conn_kind with
          | Ast.Access_connection -> ()
          | Ast.Port_connection ->
              let src = end_node inst conn.Ast.conn_src in
              let dst = end_node inst conn.Ast.conn_dst in
              let link = { declared_in = inst.Instance.path; conn } in
              Hashtbl.add edges (node_key src) (dst, link);
              if conn.Ast.conn_bidirectional then
                Hashtbl.add edges (node_key dst) (src, link))
        inst.Instance.connections)
    root;
  { edges; root }

let _port_kind_of root (path, feature) =
  match Instance.find root path with
  | None -> None
  | Some inst -> (
      match Instance.feature_opt inst feature with
      | Some { Ast.fkind = Ast.Port (_, kind, _); _ } -> Some kind
      | Some { Ast.fkind = Ast.Data_access _; _ } | None -> None)

let is_ultimate_endpoint root (path, _feature) =
  match Instance.find root path with
  | Some inst -> Instance.is_thread_or_device inst
  | None -> false

(* Depth-first search from an ultimate source node, collecting every
   complete chain that reaches an ultimate destination. *)
let chains_from g start =
  let rec go node links visited acc =
    if List.mem (node_key node) visited then acc
    else
      let nexts = Hashtbl.find_all g.edges (node_key node) in
      List.fold_left
        (fun acc (next, link) ->
          let links' = links @ [ link ] in
          if is_ultimate_endpoint g.root next then (next, links') :: acc
          else go next links' (node_key node :: visited) acc)
        acc nexts
  in
  go start [] [] []

let resolve root =
  let g = build_graph root in
  let sources =
    List.concat_map
      (fun inst ->
        List.filter_map
          (fun (f : Ast.feature) ->
            match f.Ast.fkind with
            | Ast.Port ((Ast.Out | Ast.In_out), kind, _) ->
                Some (inst, f.Ast.fname, kind)
            | Ast.Port (Ast.In, _, _) | Ast.Data_access _ -> None)
          inst.Instance.features)
      (List.filter Instance.is_thread_or_device (Instance.all root))
  in
  List.concat_map
    (fun (inst, feature, kind) ->
      let start = (inst.Instance.path, feature) in
      List.rev_map
        (fun ((dst_path, dst_feature), links) ->
          {
            kind;
            src = { inst = inst.Instance.path; feature };
            dst = { inst = dst_path; feature = dst_feature };
            links;
          })
        (chains_from g start))
    sources

(* {1 Classification} *)

(* Event-like connections dispatch aperiodic/sporadic destinations and are
   queued; pure data connections are not (paper, Sections 4.3-4.4). *)
let is_event_like sc =
  match sc.kind with
  | Ast.Event_port | Ast.Event_data_port -> true
  | Ast.Data_port -> false

let same_path a b = List.map lc a = List.map lc b

let incoming sc_list (thread : Instance.t) =
  List.filter (fun sc -> same_path sc.dst.inst thread.Instance.path) sc_list

let outgoing sc_list (thread : Instance.t) =
  List.filter (fun sc -> same_path sc.src.inst thread.Instance.path) sc_list

(* The feature at the ultimate destination: its Queue_Size and
   Overflow_Handling_Protocol properties govern the queue process
   ("the last port of the connection", Section 4.4). *)
let dst_feature root sc =
  match Instance.find root sc.dst.inst with
  | None -> None
  | Some inst -> Instance.feature_opt inst sc.dst.feature

let src_feature root sc =
  match Instance.find root sc.src.inst with
  | None -> None
  | Some inst -> Instance.feature_opt inst sc.src.feature

(* A stable human-readable name for the semantic connection, used for ACSR
   label generation and trace raising. *)
let name sc =
  Fmt.str "%s_%s__%s_%s"
    (String.concat "_" sc.src.inst)
    sc.src.feature
    (String.concat "_" sc.dst.inst)
    sc.dst.feature

(* {1 Semantic access connections} *)

type access = {
  thread : string list;  (** requiring thread instance *)
  access_feature : string;
  data : string list;  (** the shared data component instance *)
  access_props : Ast.prop list;
}

let resolve_access root =
  (* Build an undirected reachability over access connections: ends may
     name a data subcomponent directly or an access feature. *)
  let edges = Hashtbl.create 16 in
  Instance.iter
    (fun inst ->
      List.iter
        (fun (conn : Ast.connection) ->
          match conn.Ast.conn_kind with
          | Ast.Port_connection -> ()
          | Ast.Access_connection ->
              let a = end_node inst conn.Ast.conn_src in
              let b = end_node inst conn.Ast.conn_dst in
              Hashtbl.add edges (node_key a) (b, conn);
              Hashtbl.add edges (node_key b) (a, conn))
        inst.Instance.connections)
    root;
  (* a node denotes a data component when (path@[feature]) resolves to a
     Data instance *)
  let as_data (path, feature) =
    match Instance.find root (path @ [ feature ]) with
    | Some i when i.Instance.category = Ast.Data -> Some i
    | _ -> None
  in
  let threads = Instance.threads root in
  List.concat_map
    (fun (th : Instance.t) ->
      List.concat_map
        (fun (f : Ast.feature) ->
          match f.Ast.fkind with
          | Ast.Data_access (Ast.In, _) ->
              let start = (th.Instance.path, f.Ast.fname) in
              let rec bfs frontier visited found props =
                match frontier with
                | [] -> (found, props)
                | node :: rest ->
                    if List.mem (node_key node) visited then
                      bfs rest visited found props
                    else
                      let nexts = Hashtbl.find_all edges (node_key node) in
                      let found, props =
                        List.fold_left
                          (fun (found, props) (next, conn) ->
                            match as_data next with
                            | Some d ->
                                ( d.Instance.path :: found,
                                  props @ conn.Ast.conn_props )
                            | None -> (found, props @ conn.Ast.conn_props))
                          (found, props) nexts
                      in
                      bfs
                        (rest @ List.map fst nexts)
                        (node_key node :: visited)
                        found props
              in
              let datas, props = bfs [ start ] [] [] [] in
              List.map
                (fun data ->
                  {
                    thread = th.Instance.path;
                    access_feature = f.Ast.fname;
                    data;
                    access_props = props;
                  })
                datas
          | Ast.Data_access ((Ast.Out | Ast.In_out), _) | Ast.Port _ -> [])
        th.Instance.features)
    threads
