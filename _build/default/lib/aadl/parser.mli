(** Recursive-descent parser for the textual AADL subset. *)

exception Error of string * Ast.srcloc

val parse_string : string -> Ast.model
(** Parse a compilation unit from a string.
    @raise Error on syntax errors, [Lexer.Error] on lexical errors. *)

val parse_file : string -> Ast.model
(** Parse a compilation unit from a file. *)
