(* Hand-written lexer for the textual AADL subset.

   AADL is case-insensitive for keywords and identifiers; we preserve the
   original spelling in tokens and normalize at comparison points.
   Comments run from "--" to end of line. *)

type token =
  | IDENT of string
  | INT of int
  | REAL of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COLON
  | SEMI
  | COMMA
  | DOT
  | DOTDOT
  | ARROW  (** [->] *)
  | BIARROW  (** [<->] *)
  | DARROW  (** [=>] *)
  | PLUSDARROW  (** [+=>] *)
  | STAR
  | LBRACKET
  | RBRACKET
  | TRANSL  (** [-\[], opening a mode transition *)
  | EOF

exception Error of string * Ast.srcloc

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | INT n -> Fmt.pf ppf "integer %d" n
  | REAL f -> Fmt.pf ppf "real %g" f
  | STRING s -> Fmt.pf ppf "string %S" s
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | LBRACE -> Fmt.string ppf "'{'"
  | RBRACE -> Fmt.string ppf "'}'"
  | COLON -> Fmt.string ppf "':'"
  | SEMI -> Fmt.string ppf "';'"
  | COMMA -> Fmt.string ppf "','"
  | DOT -> Fmt.string ppf "'.'"
  | DOTDOT -> Fmt.string ppf "'..'"
  | ARROW -> Fmt.string ppf "'->'"
  | BIARROW -> Fmt.string ppf "'<->'"
  | DARROW -> Fmt.string ppf "'=>'"
  | PLUSDARROW -> Fmt.string ppf "'+=>'"
  | STAR -> Fmt.string ppf "'*'"
  | LBRACKET -> Fmt.string ppf "'['"
  | RBRACKET -> Fmt.string ppf "']'"
  | TRANSL -> Fmt.string ppf "'-['"
  | EOF -> Fmt.string ppf "end of input"

type state = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
}

let loc st = { Ast.line = st.line; col = st.pos - st.bol + 1 }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.input then Some st.input.[st.pos + 1]
  else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_char c = is_alpha c || is_digit c || c = '_'

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '-' when peek2 st = Some '-' ->
      (* comment to end of line *)
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_trivia st
  | Some _ | None -> ()

let lex_number st =
  let start = st.pos in
  let from = loc st in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  (* a real has digits '.' digits; '..' means a range, not a real *)
  let is_real =
    peek st = Some '.'
    && (match peek2 st with Some c -> is_digit c | None -> false)
  in
  if is_real then begin
    advance st;
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    let text = String.sub st.input start (st.pos - start) in
    match float_of_string_opt text with
    | Some f -> (REAL f, from)
    | None -> raise (Error (Fmt.str "malformed real %S" text, from))
  end
  else
    let text = String.sub st.input start (st.pos - start) in
    match int_of_string_opt text with
    | Some n -> (INT n, from)
    | None -> raise (Error (Fmt.str "malformed integer %S" text, from))

let lex_ident st =
  let start = st.pos in
  let from = loc st in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  (IDENT (String.sub st.input start (st.pos - start)), from)

let lex_string st =
  let from = loc st in
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> raise (Error ("unterminated string literal", from))
    | Some '"' -> advance st
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  (STRING (Buffer.contents buf), from)

let next_token st =
  skip_trivia st;
  let from = loc st in
  match peek st with
  | None -> (EOF, from)
  | Some c when is_digit c -> lex_number st
  | Some c when is_alpha c || c = '_' -> lex_ident st
  | Some '"' -> lex_string st
  | Some '(' ->
      advance st;
      (LPAREN, from)
  | Some ')' ->
      advance st;
      (RPAREN, from)
  | Some '{' ->
      advance st;
      (LBRACE, from)
  | Some '}' ->
      advance st;
      (RBRACE, from)
  | Some ':' ->
      advance st;
      (COLON, from)
  | Some ';' ->
      advance st;
      (SEMI, from)
  | Some ',' ->
      advance st;
      (COMMA, from)
  | Some '*' ->
      advance st;
      (STAR, from)
  | Some '.' ->
      advance st;
      if peek st = Some '.' then begin
        advance st;
        (DOTDOT, from)
      end
      else (DOT, from)
  | Some '-' when peek2 st = Some '>' ->
      advance st;
      advance st;
      (ARROW, from)
  | Some '-' when peek2 st = Some '[' ->
      advance st;
      advance st;
      (TRANSL, from)
  | Some '[' ->
      advance st;
      (LBRACKET, from)
  | Some ']' ->
      advance st;
      (RBRACKET, from)
  | Some '<' when peek2 st = Some '-' ->
      advance st;
      advance st;
      if peek st = Some '>' then begin
        advance st;
        (BIARROW, from)
      end
      else raise (Error ("expected '<->'", from))
  | Some '=' when peek2 st = Some '>' ->
      advance st;
      advance st;
      (DARROW, from)
  | Some '+' when peek2 st = Some '=' ->
      advance st;
      advance st;
      if peek st = Some '>' then begin
        advance st;
        (PLUSDARROW, from)
      end
      else raise (Error ("expected '+=>'", from))
  | Some '-' ->
      (* negative number literal *)
      advance st;
      (match peek st with
      | Some c when is_digit c -> (
          match lex_number st with
          | INT n, _ -> (INT (-n), from)
          | REAL f, _ -> (REAL (-.f), from)
          | t, _ ->
              raise
                (Error (Fmt.str "unexpected %a after '-'" pp_token t, from)))
      | _ -> raise (Error ("stray '-'", from)))
  | Some c -> raise (Error (Fmt.str "unexpected character %C" c, from))

let tokenize input =
  let st = { input; pos = 0; line = 1; bol = 0 } in
  let rec go acc =
    let tok, l = next_token st in
    match tok with EOF -> List.rev ((tok, l) :: acc) | _ -> go ((tok, l) :: acc)
  in
  go []
