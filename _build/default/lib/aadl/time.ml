(* AADL time values with units (AS5506 Time property type).  All values are
   normalized to an integer number of nanoseconds; model periods are far
   below the 63-bit range. *)

type unit_ = Ps | Ns | Us | Ms | Sec | Min | Hr

type t = int (* nanoseconds *)

exception Subnanosecond of string

let ns_per = function
  | Ps -> 0 (* handled separately *)
  | Ns -> 1
  | Us -> 1_000
  | Ms -> 1_000_000
  | Sec -> 1_000_000_000
  | Min -> 60_000_000_000
  | Hr -> 3_600_000_000_000

let make value unit_ =
  match unit_ with
  | Ps ->
      if value mod 1000 <> 0 then
        raise (Subnanosecond (Fmt.str "%d ps" value))
      else value / 1000
  | u -> value * ns_per u

let zero = 0
let of_ns ns = ns
let to_ns t = t
let of_ms ms = make ms Ms
let add = ( + )
let compare = Int.compare
let equal = Int.equal
let is_zero t = t = 0

let unit_of_string s =
  match String.lowercase_ascii s with
  | "ps" -> Some Ps
  | "ns" -> Some Ns
  | "us" -> Some Us
  | "ms" -> Some Ms
  | "sec" | "s" -> Some Sec
  | "min" -> Some Min
  | "hr" | "h" -> Some Hr
  | _ -> None

let unit_to_string = function
  | Ps -> "ps"
  | Ns -> "ns"
  | Us -> "us"
  | Ms -> "ms"
  | Sec -> "sec"
  | Min -> "min"
  | Hr -> "hr"

(* Express a time value as an integral number of scheduling quanta,
   rounding up (conservative for execution times and exact for the usual
   case of multiples). *)
let to_quanta ~quantum t =
  if to_ns quantum <= 0 then invalid_arg "Time.to_quanta: quantum <= 0";
  (to_ns t + to_ns quantum - 1) / to_ns quantum

(* Same, rounding down; used for deadlines/periods where rounding up would
   be optimistic. *)
let to_quanta_floor ~quantum t =
  if to_ns quantum <= 0 then invalid_arg "Time.to_quanta_floor: quantum <= 0";
  to_ns t / to_ns quantum

let pp ppf t =
  let ns = to_ns t in
  if ns = 0 then Fmt.string ppf "0"
  else if ns mod 1_000_000_000 = 0 then Fmt.pf ppf "%d sec" (ns / 1_000_000_000)
  else if ns mod 1_000_000 = 0 then Fmt.pf ppf "%d ms" (ns / 1_000_000)
  else if ns mod 1_000 = 0 then Fmt.pf ppf "%d us" (ns / 1_000)
  else Fmt.pf ppf "%d ns" ns
