(** AADL time values, normalized to nanoseconds. *)

type unit_ = Ps | Ns | Us | Ms | Sec | Min | Hr

type t

exception Subnanosecond of string
(** Raised for picosecond values that do not round to nanoseconds. *)

val make : int -> unit_ -> t
val zero : t
val of_ns : int -> t
val to_ns : t -> int
val of_ms : int -> t
val add : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val unit_of_string : string -> unit_ option
val unit_to_string : unit_ -> string

val to_quanta : quantum:t -> t -> int
(** Number of scheduling quanta covering this duration, rounding up. *)

val to_quanta_floor : quantum:t -> t -> int
(** Number of whole scheduling quanta within this duration. *)

val pp : t Fmt.t
