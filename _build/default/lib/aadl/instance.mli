(** The AADL instance model: the tree obtained by instantiating a root
    system implementation. *)

type t = {
  name : string;
  path : string list;
  category : Ast.category;
  classifier : string option;
  features : Ast.feature list;
  props : Ast.prop list;
  connections : Ast.connection list;
  modes : Ast.mode list;
  transitions : Ast.mode_transition list;
  in_modes : string list;
  children : t list;
}

val initial_mode : t -> string option
(** The initial mode (or the first declared one); [None] for modeless
    components. *)

val is_modal : t -> bool
(** More than one mode declared. *)

val pp_path : string list Fmt.t
val path_to_string : string list -> string

val find : t -> string list -> t option
(** Descend by subcomponent names (case-insensitive). *)

val find_exn : t -> string list -> t

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold. *)

val iter : (t -> unit) -> t -> unit
val all : t -> t list
val by_category : Ast.category -> t -> t list
val threads : t -> t list
val processors : t -> t list
val buses : t -> t list
val devices : t -> t list
val data_components : t -> t list
val feature_opt : t -> string -> Ast.feature option
val is_thread_or_device : t -> bool

val resolve_reference : root:t -> from:string list -> string list -> t option
(** Resolve a reference path against the namespace of [from], searching
    enclosing scopes outward and finally the root. *)

val pp : t Fmt.t
