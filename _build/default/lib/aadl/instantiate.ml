(* Instantiation: expand a root system implementation into an instance
   tree, merging property associations with AS5506 precedence (component
   type < implementation < subcomponent < contained associations declared
   by enclosing implementations). *)

exception Error of string

(* Contained property associations still traveling down the tree: relative
   path from the current instance paired with the association. *)
type inbox = (string list * Ast.prop) list

let lc = String.lowercase_ascii

let split_inbox (inbox : inbox) child_name =
  List.filter_map
    (fun (path, prop) ->
      match path with
      | first :: rest when lc first = lc child_name -> Some (rest, prop)
      | _ -> None)
    inbox

let arrived (inbox : inbox) =
  List.filter_map (fun (path, prop) -> if path = [] then Some prop else None)
    inbox

(* Deliver applies-to associations addressed at connection names of this
   implementation into the connections themselves. *)
let attach_connection_props conns (inbox : inbox) =
  List.map
    (fun (c : Ast.connection) ->
      match c.Ast.conn_name with
      | None -> c
      | Some n ->
          let extra =
            List.filter_map
              (fun (path, prop) ->
                match path with
                | [ single ] when lc single = lc n -> Some prop
                | _ -> None)
              inbox
          in
          { c with Ast.conn_props = c.Ast.conn_props @ extra })
    conns

let rec build decls ~name ~path ~category ~classifier_name
    ~(sub_props : Ast.prop list) ~(in_modes : string list) ~(inbox : inbox)
    ~depth : Instance.t =
  if depth > 64 then
    raise
      (Error
         (Fmt.str "instantiation of %a exceeds depth 64: classifier cycle?"
            Instance.pp_path path));
  let ct, ci =
    match classifier_name with
    | None -> (None, None)
    | Some cls -> (
        match Decls.resolve_classifier decls cls with
        | Decls.Type_only ct -> (Some ct, None)
        | Decls.Type_and_impl (ct, ci) -> (Some ct, Some ci)
        | exception Decls.Unknown_classifier c ->
            raise
              (Error
                 (Fmt.str "unknown classifier %s for %a" c Instance.pp_path
                    path)))
  in
  (match ct with
  | Some ct when ct.Ast.ct_category <> category ->
      raise
        (Error
           (Fmt.str "%a: declared as %a but classifier %s is a %a"
              Instance.pp_path path Ast.pp_category category
              (Option.get classifier_name) Ast.pp_category
              ct.Ast.ct_category))
  | Some _ | None -> ());
  let features = match ct with Some ct -> ct.Ast.ct_features | None -> [] in
  let type_props = match ct with Some ct -> ct.Ast.ct_props | None -> [] in
  let impl_own_props, impl_contained =
    match ci with
    | None -> ([], [])
    | Some ci ->
        List.partition (fun p -> p.Ast.applies_to = []) ci.Ast.ci_props
  in
  let sub_own_props, sub_contained =
    List.partition (fun p -> p.Ast.applies_to = []) sub_props
  in
  (* contained associations declared here, exploded one path per entry *)
  let new_inbox : inbox =
    List.concat_map
      (fun p -> List.map (fun path -> (path, p)) p.Ast.applies_to)
      (impl_contained @ sub_contained)
  in
  let inbox_here = inbox @ new_inbox in
  let props =
    type_props @ impl_own_props @ sub_own_props @ arrived inbox_here
  in
  let connections =
    match ci with
    | None -> []
    | Some ci -> attach_connection_props ci.Ast.ci_connections inbox_here
  in
  let modes = match ci with Some ci -> ci.Ast.ci_modes | None -> [] in
  let transitions =
    match ci with Some ci -> ci.Ast.ci_transitions | None -> []
  in
  let children =
    match ci with
    | None -> []
    | Some ci ->
        List.map
          (fun (sub : Ast.subcomponent) ->
            let child_inbox = split_inbox inbox_here sub.Ast.sub_name in
            build decls ~name:sub.Ast.sub_name
              ~path:(path @ [ sub.Ast.sub_name ])
              ~category:sub.Ast.sub_category
              ~classifier_name:sub.Ast.sub_classifier
              ~sub_props:sub.Ast.sub_props
              ~in_modes:sub.Ast.sub_modes ~inbox:child_inbox
              ~depth:(depth + 1))
          ci.Ast.ci_subcomponents
  in
  {
    Instance.name;
    path;
    category;
    classifier = classifier_name;
    features;
    props;
    connections;
    modes;
    transitions;
    in_modes;
    children;
  }

let instantiate (model : Ast.model) ~root : Instance.t =
  let decls = Decls.of_model model in
  let ci =
    match Decls.find_impl_opt decls root with
    | Some ci -> ci
    | None -> (
        (* accept a bare type name if it has exactly one implementation *)
        match
          List.filter
            (fun ci -> lc ci.Ast.ci_type_name = lc root)
            (Decls.impls decls)
        with
        | [ ci ] -> ci
        | [] -> raise (Error (Fmt.str "no implementation named %s" root))
        | _ ->
            raise
              (Error
                 (Fmt.str "type %s has several implementations; name one"
                    root)))
  in
  build decls
    ~name:(Ast.impl_full_name ci)
    ~path:[] ~category:ci.Ast.ci_category
    ~classifier_name:(Some (Ast.impl_full_name ci))
    ~sub_props:[] ~in_modes:[] ~inbox:[] ~depth:0

let of_string ?root text =
  let model = Parser.parse_string text in
  let root =
    match root with
    | Some r -> r
    | None -> (
        (* default: the unique system implementation that is not used as a
           subcomponent anywhere (the topmost one) *)
        let decls = Decls.of_model model in
        let impls = Decls.impls decls in
        let used = Hashtbl.create 16 in
        List.iter
          (fun ci ->
            List.iter
              (fun (s : Ast.subcomponent) ->
                match s.Ast.sub_classifier with
                | Some c -> Hashtbl.replace used (lc c) ()
                | None -> ())
              ci.Ast.ci_subcomponents)
          impls;
        let roots =
          List.filter
            (fun ci ->
              ci.Ast.ci_category = Ast.System
              && (not (Hashtbl.mem used (lc (Ast.impl_full_name ci)))))
            impls
        in
        match roots with
        | [ ci ] -> Ast.impl_full_name ci
        | [] -> raise (Error "no root system implementation found")
        | _ ->
            raise
              (Error
                 "several candidate root systems; pass ~root explicitly"))
  in
  instantiate model ~root
