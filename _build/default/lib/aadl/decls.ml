(* Symbol table over the declarations of a parsed model: component types by
   name and implementations by "type.impl" name, case-insensitive. *)

exception Duplicate_declaration of string
exception Unknown_classifier of string
exception Category_mismatch of string * Ast.category * Ast.category
(** classifier, expected, found *)

type t = {
  types : (string, Ast.component_type) Hashtbl.t;
  impls : (string, Ast.component_impl) Hashtbl.t;
}

let key = String.lowercase_ascii

let of_model (m : Ast.model) =
  let t = { types = Hashtbl.create 32; impls = Hashtbl.create 32 } in
  List.iter
    (fun decl ->
      let name = Ast.decl_name decl in
      match decl with
      | Ast.Type_decl ct ->
          if Hashtbl.mem t.types (key name) then
            raise (Duplicate_declaration name);
          Hashtbl.add t.types (key name) ct
      | Ast.Impl_decl ci ->
          if Hashtbl.mem t.impls (key name) then
            raise (Duplicate_declaration name);
          Hashtbl.add t.impls (key name) ci)
    m.Ast.decls;
  t

let find_type_opt t name = Hashtbl.find_opt t.types (key name)
let find_impl_opt t name = Hashtbl.find_opt t.impls (key name)

let find_type t name =
  match find_type_opt t name with
  | Some ct -> ct
  | None -> raise (Unknown_classifier name)

let find_impl t name =
  match find_impl_opt t name with
  | Some ci -> ci
  | None -> raise (Unknown_classifier name)

(* A classifier reference is either a type name or a "type.impl" name. *)
type classifier =
  | Type_only of Ast.component_type
  | Type_and_impl of Ast.component_type * Ast.component_impl

let resolve_classifier t name =
  match String.index_opt name '.' with
  | None -> Type_only (find_type t name)
  | Some _ -> (
      match find_impl_opt t name with
      | Some ci ->
          let ct = find_type t ci.Ast.ci_type_name in
          Type_and_impl (ct, ci)
      | None -> raise (Unknown_classifier name))

let classifier_category = function
  | Type_only ct -> ct.Ast.ct_category
  | Type_and_impl (ct, _) -> ct.Ast.ct_category

let check_category name expected cls =
  let found = classifier_category cls in
  if found <> expected then raise (Category_mismatch (name, expected, found))

let types t = Hashtbl.fold (fun _ ct acc -> ct :: acc) t.types []
let impls t = Hashtbl.fold (fun _ ci acc -> ci :: acc) t.impls []
