(* Legality checks: the preconditions the paper's translation places on a
   completely instantiated and bound model (Section 4.1):

   1. at least one thread and one processor; every thread bound;
   2. every thread has Dispatch_Protocol, Compute_Execution_Time and
      Compute_Deadline (and a Period for periodic/sporadic threads);
   3. every processor with bound threads has Scheduling_Protocol;
   4. for non-periodic threads, every in event / in event-data port has an
      incoming semantic connection. *)

type severity = Error | Warning

type diagnostic = { severity : severity; subject : string list; message : string }

let pp_diagnostic ppf d =
  Fmt.pf ppf "%s: %a: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    Instance.pp_path d.subject d.message

let error subject fmt = Fmt.kstr (fun message -> { severity = Error; subject; message }) fmt
let warning subject fmt =
  Fmt.kstr (fun message -> { severity = Warning; subject; message }) fmt

let errors diags = List.filter (fun d -> d.severity = Error) diags
let is_ok diags = errors diags = []

let check_thread ~root sconns (th : Instance.t) =
  let p = th.Instance.props in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let dispatch =
    match Props.dispatch_protocol p with
    | Some d -> Some d
    | None ->
        add (error th.Instance.path "missing Dispatch_Protocol");
        None
  in
  (match Props.compute_execution_time p with
  | Some (lo, hi) ->
      if Time.compare lo hi > 0 then
        add
          (error th.Instance.path
             "Compute_Execution_Time range has min > max");
      if Time.compare hi Time.zero <= 0 then
        add (error th.Instance.path "Compute_Execution_Time must be positive")
  | None -> add (error th.Instance.path "missing Compute_Execution_Time"));
  (match Props.compute_deadline p with
  | Some d ->
      if Time.compare d Time.zero <= 0 then
        add (error th.Instance.path "Compute_Deadline must be positive")
  | None -> add (error th.Instance.path "missing Compute_Deadline"));
  (match dispatch with
  | Some (Props.Periodic | Props.Sporadic) ->
      (match Props.period p with
      | Some per ->
          if Time.compare per Time.zero <= 0 then
            add (error th.Instance.path "Period must be positive")
      | None ->
          add
            (error th.Instance.path
               "periodic/sporadic thread is missing Period"))
  | Some (Props.Aperiodic | Props.Background) | None -> ());
  (* deadline within period is the usual sanity condition; a violation is
     legal AADL but almost surely a modeling error *)
  (match (Props.compute_deadline p, Props.period p) with
  | Some d, Some per when Time.compare d per > 0 ->
      add (warning th.Instance.path "Compute_Deadline exceeds Period")
  | _ -> ());
  (match Binding.processor_of ~root th with
  | Some _ -> ()
  | None -> add (error th.Instance.path "thread is not bound to a processor")
  | exception Binding.Unbound msg -> add (error th.Instance.path "%s" msg));
  (* rule 4: incoming connections on event ports of non-periodic threads *)
  (match dispatch with
  | Some (Props.Aperiodic | Props.Sporadic | Props.Background) ->
      let incoming = Semconn.incoming sconns th in
      List.iter
        (fun (f : Ast.feature) ->
          match f.Ast.fkind with
          | Ast.Port (Ast.In, (Ast.Event_port | Ast.Event_data_port), _) ->
              let has_conn =
                List.exists
                  (fun (sc : Semconn.t) ->
                    String.lowercase_ascii sc.Semconn.dst.Semconn.feature
                    = String.lowercase_ascii f.Ast.fname)
                  incoming
              in
              if not has_conn then
                add
                  (error th.Instance.path
                     "in event port %s of a non-periodic thread has no \
                      incoming connection"
                     f.Ast.fname)
          | Ast.Port _ | Ast.Data_access _ -> ())
        th.Instance.features
  | Some Props.Periodic | None -> ());
  List.rev !diags

let check_processor (proc : Instance.t) bound_threads =
  if bound_threads = [] then
    [
      warning proc.Instance.path
        "processor has no bound threads; it is ignored by the translation";
    ]
  else
    match Props.scheduling_protocol proc.Instance.props with
    | Some _ -> []
    | None -> [ error proc.Instance.path "missing Scheduling_Protocol" ]
    | exception Props.Bad_property (name, why) ->
        [ error proc.Instance.path "%s: %s" name why ]

(* Structural well-formedness of each instance: unique child names,
   connection ends that resolve to features or subcomponents, unique mode
   names, transitions between declared modes. *)
let check_structure (inst : Instance.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let lc = String.lowercase_ascii in
  (* duplicate subcomponent names *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (c : Instance.t) ->
      let k = lc c.Instance.name in
      if Hashtbl.mem seen k then
        add (error inst.Instance.path "duplicate subcomponent %s" c.Instance.name)
      else Hashtbl.add seen k ())
    inst.Instance.children;
  (* connection ends *)
  let end_ok (e : Ast.conn_end) =
    match e.Ast.ce_sub with
    | None ->
        (* own feature, or a data subcomponent named directly *)
        Instance.feature_opt inst e.Ast.ce_feature <> None
        || List.exists
             (fun (c : Instance.t) -> lc c.Instance.name = lc e.Ast.ce_feature)
             inst.Instance.children
    | Some sub -> (
        match
          List.find_opt
            (fun (c : Instance.t) -> lc c.Instance.name = lc sub)
            inst.Instance.children
        with
        | None -> false
        | Some child -> Instance.feature_opt child e.Ast.ce_feature <> None)
  in
  List.iter
    (fun (c : Ast.connection) ->
      if not (end_ok c.Ast.conn_src) then
        add
          (error inst.Instance.path "connection source %a does not resolve"
             Ast.pp_conn_end c.Ast.conn_src);
      if not (end_ok c.Ast.conn_dst) then
        add
          (error inst.Instance.path
             "connection destination %a does not resolve" Ast.pp_conn_end
             c.Ast.conn_dst))
    inst.Instance.connections;
  (* modes *)
  let mode_names =
    List.map (fun m -> lc m.Ast.mode_name) inst.Instance.modes
  in
  if
    List.length (List.sort_uniq String.compare mode_names)
    <> List.length mode_names
  then add (error inst.Instance.path "duplicate mode names");
  if
    List.length
      (List.filter (fun m -> m.Ast.mode_initial) inst.Instance.modes)
    > 1
  then add (error inst.Instance.path "several initial modes");
  List.iter
    (fun (t : Ast.mode_transition) ->
      if not (List.mem (lc t.Ast.mt_src) mode_names) then
        add
          (error inst.Instance.path "mode transition from unknown mode %s"
             t.Ast.mt_src);
      if not (List.mem (lc t.Ast.mt_dst) mode_names) then
        add
          (error inst.Instance.path "mode transition to unknown mode %s"
             t.Ast.mt_dst))
    inst.Instance.transitions;
  (* in-modes clauses of children must reference declared modes *)
  List.iter
    (fun (c : Instance.t) ->
      List.iter
        (fun m ->
          if not (List.mem (lc m) mode_names) then
            add
              (error c.Instance.path
                 "'in modes (%s)' references an undeclared mode" m))
        c.Instance.in_modes)
    inst.Instance.children;
  List.rev !diags

let run root =
  let threads = Instance.threads root in
  let processors = Instance.processors root in
  let global =
    (if threads = [] then
       [ error root.Instance.path "model contains no thread" ]
     else [])
    @
    if processors = [] then
      [ error root.Instance.path "model contains no processor" ]
    else []
  in
  let sconns = Semconn.resolve root in
  let thread_diags =
    List.concat_map
      (fun th ->
        try check_thread ~root sconns th
        with Props.Bad_property (name, why) ->
          [ error th.Instance.path "%s: %s" name why ])
      threads
  in
  let proc_diags =
    List.concat_map
      (fun (proc, bound) -> check_processor proc bound)
      (Binding.threads_by_processor ~root)
  in
  let structure_diags =
    List.concat_map check_structure (Instance.all root)
  in
  global @ structure_diags @ thread_diags @ proc_diags

exception Failed of diagnostic list

let run_exn root =
  let diags = run root in
  if is_ok diags then diags else raise (Failed (errors diags))

let pp_report ppf diags =
  if diags = [] then Fmt.string ppf "model is well-formed"
  else Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_diagnostic) diags
