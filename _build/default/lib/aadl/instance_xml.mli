(** XML interchange for instance models (OSATE-inspired: the paper's tool
    chain consumes OSATE's XML-based internal representation).

    The format round-trips every field of {!Instance.t} except source
    locations and the [applies to] paths of property associations, which
    are already resolved in an instance model. *)

exception Error of string

val to_xml : Instance.t -> Xml.t
val of_xml : Xml.t -> Instance.t
val to_string : Instance.t -> string

val of_string : string -> Instance.t
(** @raise Error on malformed XML or schema violations. *)

val write_file : string -> Instance.t -> unit
val read_file : string -> Instance.t
