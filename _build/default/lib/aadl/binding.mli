(** Deployment binding resolution (threads to processors, connections to
    buses). *)

exception Unbound of string

val processor_of : root:Instance.t -> Instance.t -> Instance.t option
(** The processor a thread is bound to via [Actual_Processor_Binding].
    @raise Unbound if the reference resolves to a non-processor or not at
    all. *)

val processor_of_exn : root:Instance.t -> Instance.t -> Instance.t

val bus_of : root:Instance.t -> Semconn.t -> Instance.t option
(** The bus a semantic connection is mapped to via
    [Actual_Connection_Binding] on any traversed declared connection. *)

val threads_by_processor : root:Instance.t -> (Instance.t * Instance.t list) list
(** Each processor with the threads bound to it. *)
