(** Legality checks matching the translation preconditions of Section 4.1
    of the paper. *)

type severity = Error | Warning

type diagnostic = {
  severity : severity;
  subject : string list;
  message : string;
}

val pp_diagnostic : diagnostic Fmt.t
val errors : diagnostic list -> diagnostic list
val is_ok : diagnostic list -> bool

val run : Instance.t -> diagnostic list
(** All diagnostics for the instance model, errors and warnings. *)

exception Failed of diagnostic list

val run_exn : Instance.t -> diagnostic list
(** Like {!run} but raises {!Failed} with the errors when any exist;
    returns the warnings otherwise. *)

val pp_report : diagnostic list Fmt.t
