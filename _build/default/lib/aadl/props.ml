(* Typed accessors for the standard AADL properties the analysis consumes
   (AS5506 predeclared property sets).  Property names are matched
   case-insensitively and with or without their property-set qualifier,
   e.g. both [Period] and [Timing_Properties::Period] are accepted. *)

type dispatch_protocol = Periodic | Aperiodic | Sporadic | Background

let dispatch_protocol_to_string = function
  | Periodic -> "Periodic"
  | Aperiodic -> "Aperiodic"
  | Sporadic -> "Sporadic"
  | Background -> "Background"

let pp_dispatch_protocol ppf d =
  Fmt.string ppf (dispatch_protocol_to_string d)

type overflow_handling = Drop_newest | Drop_oldest | Error

let pp_overflow_handling ppf = function
  | Drop_newest -> Fmt.string ppf "DropNewest"
  | Drop_oldest -> Fmt.string ppf "DropOldest"
  | Error -> Fmt.string ppf "Error"

type scheduling_protocol =
  | Rate_monotonic
  | Deadline_monotonic
  | Highest_priority_first  (** fixed priorities from the Priority property *)
  | Edf
  | Llf
  | Hierarchical
      (** two-level: fixed priority across thread groups, a local policy
          within each (extension; the paper's future work, Section 7) *)

let scheduling_protocol_to_string = function
  | Rate_monotonic -> "RATE_MONOTONIC_PROTOCOL"
  | Deadline_monotonic -> "DEADLINE_MONOTONIC_PROTOCOL"
  | Highest_priority_first -> "HPF_PROTOCOL"
  | Edf -> "EDF_PROTOCOL"
  | Llf -> "LLF_PROTOCOL"
  | Hierarchical -> "HIERARCHICAL_PROTOCOL"

let pp_scheduling_protocol ppf s =
  Fmt.string ppf (scheduling_protocol_to_string s)

exception Bad_property of string * string
(** property name, explanation *)

(* Strip an optional "set::" qualifier. *)
let base_name name =
  match String.index_opt name ':' with
  | Some i when i + 1 < String.length name && name.[i + 1] = ':' ->
      String.sub name (i + 2) (String.length name - i - 2)
  | Some _ | None -> name

let matches wanted (p : Ast.prop) =
  let n = base_name p.Ast.pname in
  String.equal n (String.lowercase_ascii wanted)

(* Later associations take precedence, so scan from the end: merged
   property lists are ordered from weakest (component type) to strongest
   (contained associations). *)
let find name props =
  List.fold_left
    (fun acc p -> if matches name p then Some p.Ast.pvalue else acc)
    None props

let find_exn name props =
  match find name props with
  | Some v -> v
  | None -> raise (Bad_property (name, "missing"))

let mem name props = find name props <> None

let as_time name = function
  | Ast.Ptime t -> t
  | Ast.Pint 0 -> Time.zero
  | _ -> raise (Bad_property (name, "expected a time value"))

let as_int name = function
  | Ast.Pint n -> n
  | _ -> raise (Bad_property (name, "expected an integer"))

let as_enum name = function
  | Ast.Penum s -> s
  | Ast.Pstring s -> s
  | _ -> raise (Bad_property (name, "expected an enumeration identifier"))

let as_reference name = function
  | Ast.Preference path -> path
  | _ -> raise (Bad_property (name, "expected a reference"))

let time_opt name props = Option.map (as_time name) (find name props)
let int_opt name props = Option.map (as_int name) (find name props)

let time_range_opt name props =
  match find name props with
  | None -> None
  | Some (Ast.Prange (lo, hi)) -> Some (as_time name lo, as_time name hi)
  | Some v ->
      let t = as_time name v in
      Some (t, t)

(* {1 Thread properties} *)

let dispatch_protocol props =
  match find "dispatch_protocol" props with
  | None -> None
  | Some v -> (
      match String.lowercase_ascii (as_enum "dispatch_protocol" v) with
      | "periodic" -> Some Periodic
      | "aperiodic" -> Some Aperiodic
      | "sporadic" -> Some Sporadic
      | "background" -> Some Background
      | other ->
          raise
            (Bad_property
               ("dispatch_protocol", "unknown protocol " ^ other)))

let period props = time_opt "period" props

let compute_execution_time props =
  time_range_opt "compute_execution_time" props

let compute_deadline props =
  match time_opt "compute_deadline" props with
  | Some t -> Some t
  | None -> time_opt "deadline" props

let priority props =
  match int_opt "priority" props with
  | Some p -> Some p
  | None -> int_opt "source_text_priority" props

let urgency props = int_opt "urgency" props

(* {1 Port properties} *)

let queue_size props =
  match int_opt "queue_size" props with Some n -> n | None -> 1

let overflow_handling props =
  match find "overflow_handling_protocol" props with
  | None -> Drop_newest
  | Some v -> (
      match
        String.lowercase_ascii (as_enum "overflow_handling_protocol" v)
      with
      | "dropnewest" -> Drop_newest
      | "dropoldest" -> Drop_oldest
      | "error" -> Error
      | other ->
          raise
            (Bad_property
               ("overflow_handling_protocol", "unknown protocol " ^ other)))

(* {1 Processor properties} *)

let scheduling_protocol props =
  match find "scheduling_protocol" props with
  | None -> None
  | Some v -> (
      let raw =
        match v with
        | Ast.Plist [ single ] -> as_enum "scheduling_protocol" single
        | v -> as_enum "scheduling_protocol" v
      in
      match String.lowercase_ascii raw with
      | "rate_monotonic_protocol" | "rate_monotonic" | "rm" | "rms" ->
          Some Rate_monotonic
      | "deadline_monotonic_protocol" | "deadline_monotonic" | "dm" ->
          Some Deadline_monotonic
      | "hpf_protocol" | "highest_priority_first" | "hpf"
      | "posix_1003_highest_priority_first_protocol" | "fixed_priority" ->
          Some Highest_priority_first
      | "edf_protocol" | "earliest_deadline_first_protocol" | "edf" ->
          Some Edf
      | "llf_protocol" | "least_laxity_first_protocol" | "llf" -> Some Llf
      | "hierarchical_protocol" | "hierarchical" -> Some Hierarchical
      | other ->
          raise (Bad_property ("scheduling_protocol", "unknown protocol " ^ other)))

(* {1 Bindings} *)

let actual_processor_binding props =
  match find "actual_processor_binding" props with
  | None -> None
  | Some (Ast.Plist [ v ]) ->
      Some (as_reference "actual_processor_binding" v)
  | Some v -> Some (as_reference "actual_processor_binding" v)

let actual_connection_binding props =
  match find "actual_connection_binding" props with
  | None -> None
  | Some (Ast.Plist [ v ]) ->
      Some (as_reference "actual_connection_binding" v)
  | Some v -> Some (as_reference "actual_connection_binding" v)

(* {1 Shared data} *)

type concurrency_control =
  | No_protocol
  | Priority_ceiling
  | Priority_inheritance

let pp_concurrency_control ppf = function
  | No_protocol -> Fmt.string ppf "None_Specified"
  | Priority_ceiling -> Fmt.string ppf "Priority_Ceiling"
  | Priority_inheritance -> Fmt.string ppf "Priority_Inheritance"

let concurrency_control props =
  match find "concurrency_control_protocol" props with
  | None -> No_protocol
  | Some v -> (
      match
        String.lowercase_ascii (as_enum "concurrency_control_protocol" v)
      with
      | "none_specified" | "none" -> No_protocol
      | "priority_ceiling" | "priority_ceiling_protocol" | "pcp" ->
          Priority_ceiling
      | "priority_inheritance" | "priority_inheritance_protocol" | "pip" ->
          Priority_inheritance
      | other ->
          raise
            (Bad_property
               ("concurrency_control_protocol", "unknown protocol " ^ other)))

(* {1 Flow / latency} *)

let latency props = time_opt "latency" props
