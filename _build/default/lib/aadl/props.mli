(** Typed accessors for the standard AADL properties consumed by the
    translation and analyses. *)

type dispatch_protocol = Periodic | Aperiodic | Sporadic | Background

val dispatch_protocol_to_string : dispatch_protocol -> string
val pp_dispatch_protocol : dispatch_protocol Fmt.t

type overflow_handling = Drop_newest | Drop_oldest | Error

val pp_overflow_handling : overflow_handling Fmt.t

type scheduling_protocol =
  | Rate_monotonic
  | Deadline_monotonic
  | Highest_priority_first
  | Edf
  | Llf
  | Hierarchical

val scheduling_protocol_to_string : scheduling_protocol -> string
val pp_scheduling_protocol : scheduling_protocol Fmt.t

exception Bad_property of string * string

val find : string -> Ast.prop list -> Ast.pvalue option
(** Last (strongest) association whose base name matches, case-insensitive,
    qualifier-insensitive. *)

val find_exn : string -> Ast.prop list -> Ast.pvalue
val mem : string -> Ast.prop list -> bool
val time_opt : string -> Ast.prop list -> Time.t option
val int_opt : string -> Ast.prop list -> int option
val time_range_opt : string -> Ast.prop list -> (Time.t * Time.t) option

val dispatch_protocol : Ast.prop list -> dispatch_protocol option
val period : Ast.prop list -> Time.t option

val compute_execution_time : Ast.prop list -> (Time.t * Time.t) option
(** The (min, max) execution time range; a scalar value yields a
    degenerate range. *)

val compute_deadline : Ast.prop list -> Time.t option
(** [Compute_Deadline], falling back to [Deadline]. *)

val priority : Ast.prop list -> int option
val urgency : Ast.prop list -> int option

val queue_size : Ast.prop list -> int
(** Defaults to 1 when unspecified (paper, Section 4.4). *)

val overflow_handling : Ast.prop list -> overflow_handling
(** Defaults to [Drop_newest]. *)

val scheduling_protocol : Ast.prop list -> scheduling_protocol option

type concurrency_control =
  | No_protocol
  | Priority_ceiling
  | Priority_inheritance

val pp_concurrency_control : concurrency_control Fmt.t

val concurrency_control : Ast.prop list -> concurrency_control
(** [Concurrency_Control_Protocol] of a shared data component; defaults
    to [No_protocol]. *)

val actual_processor_binding : Ast.prop list -> string list option
val actual_connection_binding : Ast.prop list -> string list option
val latency : Ast.prop list -> Time.t option
