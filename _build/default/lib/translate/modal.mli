(** Mode support — an extension beyond the paper's translation scope
    (Section 4.1 omits modes).  One modal component is supported: its
    mode manager process tracks the current mode and delivers
    activation/deactivation control events to the dispatchers of threads
    whose activity is mode-dependent. *)

open Acsr

exception Unsupported of string

type trigger =
  | Internal of { source : string list; port : string; label : Label.t }
  | Environment of { port : string; label : Label.t }
  | Device_source of {
      source : string list;
      port : string;
      label : Label.t;
      period : int option;
    }

type transition = { src : string; dst : string; triggers : trigger list }

type t = {
  host : Aadl.Instance.t;
  mode_names : string list;
  initial : string;
  transitions : transition list;
  thread_activity : (string list * string list) list;
}

val find : Aadl.Instance.t -> Aadl.Instance.t option
(** The modal component of the tree, if any.
    @raise Unsupported when several components declare modes. *)

val thread_modes : host:Aadl.Instance.t -> Aadl.Instance.t -> string list
(** Modes of [host] in which the thread is active; empty = all. *)

val analyze : root:Aadl.Instance.t -> quantum:Aadl.Time.t -> Aadl.Instance.t -> t

val active_in : t -> mode:string -> thread:string list -> bool
val initially_active : t -> thread:string list -> bool

val restricted_threads : t -> string list list
(** Threads whose activity is mode-dependent. *)

val internal_triggers_of : t -> thread:string list -> Label.t list
(** Trigger labels this thread may raise during computation. *)

val activate_label : string list -> Label.t
val deactivate_label : string list -> Label.t

type generated = {
  defs : (string * string list * Proc.t) list;
  initial : Proc.t;
  stimuli : (string * string list * Proc.t) list;
  stimuli_initials : Proc.t list;
  internal_labels : Label.t list;
}

val generate : registry:Naming.registry -> t -> generated
(** The mode manager, switch sequences, and stimuli for environment- or
    device-raised triggers. *)
