(** Queue processes for event connections, and stimulus generators for
    device-driven connections (paper, Section 4.4). *)

type t = { defs : (string * string list * Acsr.Proc.t) list; initial : Acsr.Proc.t }

val queue :
  registry:Naming.registry -> root:Aadl.Instance.t -> Aadl.Semconn.t -> t
(** The counter process of a semantic event/event-data connection, sized by
    the destination port's [Queue_Size], with its
    [Overflow_Handling_Protocol] behaviour (Error blocks time and thus
    surfaces as a deadlock). *)

val stimulus :
  registry:Naming.registry ->
  root:Aadl.Instance.t ->
  quantum:Aadl.Time.t ->
  Aadl.Semconn.t ->
  t
(** An environment process raising the connection's event: periodically if
    the source device has a [Period], nondeterministically otherwise. *)
