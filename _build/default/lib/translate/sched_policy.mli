(** Scheduling policies as priority assignment rules (paper, Section 5). *)

open Acsr

type assignment = { task : Workload.task; cpu_priority : Expr.t }

exception Unsupported of string

val rate_monotonic : Workload.task list -> assignment list
(** Shorter period, higher (static) priority; unperioded tasks lowest. *)

val deadline_monotonic : Workload.task list -> assignment list

val highest_priority_first : Workload.task list -> assignment list
(** Static priorities from the AADL [Priority] property. *)

val edf : Workload.task list -> assignment list
(** Dynamic priorities [dmax - (d_i - t) + 1] over the Compute-process
    parameter [t]. *)

val llf : Workload.task list -> assignment list
(** Least laxity first: [dmax - ((d_i - t) - (cmax_i - e)) + 1]. *)

val assign :
  Aadl.Props.scheduling_protocol -> Workload.task list -> assignment list
(** @raise Unsupported for [Hierarchical]: use {!hierarchical}. *)

type group = {
  group_name : string list;
  group_rank : int;
  local_protocol : Aadl.Props.scheduling_protocol;
  members : Workload.task list;
}

val local_bound :
  Aadl.Props.scheduling_protocol -> Workload.task list -> int

val hierarchical : group list -> assignment list
(** Two-level scheduling by priority bands: fixed priority across groups,
    the group's local policy within (extension; paper Section 7). *)

val find : assignment list -> Workload.task -> Expr.t
(** @raise Unsupported when the task has no assignment. *)

val pp_assignment : assignment Fmt.t
