(** The timed task view of an instance model, in scheduling quanta. *)

exception Error of string

type task = {
  path : string list;
  name : string;
  dispatch : Aadl.Props.dispatch_protocol;
  period : int option;
  cmin : int;
  cmax : int;
  deadline : int;
  aadl_priority : int option;
  processor : string list;
  incoming_events : Aadl.Semconn.t list;
  outgoing : Aadl.Semconn.t list;
  out_buses : string list list;
  data_shared : string list list;
}

type t = {
  root : Aadl.Instance.t;
  quantum : Aadl.Time.t;
  tasks : task list;
  sconns : Aadl.Semconn.t list;
  by_processor : (Aadl.Instance.t * task list) list;
}

val extract : quantum:Aadl.Time.t -> Aadl.Instance.t -> t
(** Convert thread timing properties to quanta: execution times round up,
    periods and deadlines round down (a conservative over-approximation).
    @raise Error on missing properties, sub-quantum values, or a thread
    whose cmax exceeds its deadline. *)

val suggest_quantum : Aadl.Instance.t -> Aadl.Time.t
(** The gcd of every time value in the model: the coarsest quantum that
    loses no precision.  Defaults to 1 ms for untimed models. *)

val find_task : t -> string list -> task option

val utilization : task list -> float
(** Sum of cmax/period over the tasks that have a period. *)

val pp_task : task Fmt.t
val pp : t Fmt.t
