(* Extraction of the timed task view of an instance model.

   All durations are converted to integral numbers of scheduling quanta
   (paper, Section 4.1: discrete time, fixed-size quanta).  Execution
   times round up and deadlines/periods round down, so the quantized model
   over-approximates the timing behaviour of the original, as the paper
   requires: analysis may produce false deadline violations but never
   false guarantees. *)

exception Error of string

type task = {
  path : string list;
  name : string;  (** sanitized identifier *)
  dispatch : Aadl.Props.dispatch_protocol;
  period : int option;  (** quanta; [Some] for periodic and sporadic *)
  cmin : int;  (** minimum execution time, quanta, >= 1 *)
  cmax : int;  (** maximum execution time, quanta, >= cmin *)
  deadline : int;  (** quanta *)
  aadl_priority : int option;  (** the AADL [Priority] property *)
  processor : string list;  (** bound processor instance path *)
  incoming_events : Aadl.Semconn.t list;
      (** event-like semantic connections ending at this thread *)
  outgoing : Aadl.Semconn.t list;
  out_buses : string list list;
      (** buses carrying outgoing connections: used by the final
          computation steps of a dispatch *)
  data_shared : string list list;
      (** shared data components reached by access connections *)
}

type t = {
  root : Aadl.Instance.t;
  quantum : Aadl.Time.t;
  tasks : task list;
  sconns : Aadl.Semconn.t list;
  by_processor : (Aadl.Instance.t * task list) list;
}

let quanta_ceil ~quantum time = Aadl.Time.to_quanta ~quantum time

let quanta_floor ~quantum ~what path time =
  let q = Aadl.Time.to_quanta_floor ~quantum time in
  if q = 0 then
    raise
      (Error
         (Fmt.str "%a: %s (%a) is smaller than the quantum (%a)"
            Aadl.Instance.pp_path path what Aadl.Time.pp time Aadl.Time.pp
            quantum))
  else q

let task_of_thread ~root ~quantum sconns (th : Aadl.Instance.t) =
  let props = th.Aadl.Instance.props in
  let path = th.Aadl.Instance.path in
  let missing what =
    raise (Error (Fmt.str "%a: missing %s" Aadl.Instance.pp_path path what))
  in
  let dispatch =
    match Aadl.Props.dispatch_protocol props with
    | Some d -> d
    | None -> missing "Dispatch_Protocol"
  in
  let cmin, cmax =
    match Aadl.Props.compute_execution_time props with
    | Some (lo, hi) ->
        (max 1 (quanta_ceil ~quantum lo), max 1 (quanta_ceil ~quantum hi))
    | None -> missing "Compute_Execution_Time"
  in
  let deadline =
    match Aadl.Props.compute_deadline props with
    | Some d -> quanta_floor ~quantum ~what:"Compute_Deadline" path d
    | None -> missing "Compute_Deadline"
  in
  let period =
    match (dispatch, Aadl.Props.period props) with
    | (Aadl.Props.Periodic | Aadl.Props.Sporadic), Some p ->
        Some (quanta_floor ~quantum ~what:"Period" path p)
    | (Aadl.Props.Periodic | Aadl.Props.Sporadic), None -> missing "Period"
    | (Aadl.Props.Aperiodic | Aadl.Props.Background), p ->
        Option.map (quanta_floor ~quantum ~what:"Period" path) p
  in
  let processor =
    (Aadl.Binding.processor_of_exn ~root th).Aadl.Instance.path
  in
  let incoming_events =
    List.filter Aadl.Semconn.is_event_like (Aadl.Semconn.incoming sconns th)
  in
  let outgoing = Aadl.Semconn.outgoing sconns th in
  let out_buses =
    List.filter_map
      (fun sc ->
        Option.map
          (fun (b : Aadl.Instance.t) -> b.Aadl.Instance.path)
          (Aadl.Binding.bus_of ~root sc))
      outgoing
    |> List.sort_uniq Stdlib.compare
  in
  let data_shared =
    Aadl.Semconn.resolve_access root
    |> List.filter (fun (a : Aadl.Semconn.access) ->
           List.map String.lowercase_ascii a.Aadl.Semconn.thread
           = List.map String.lowercase_ascii path)
    |> List.map (fun (a : Aadl.Semconn.access) -> a.Aadl.Semconn.data)
    |> List.sort_uniq Stdlib.compare
  in
  if cmax > deadline then
    raise
      (Error
         (Fmt.str
            "%a: maximum execution time (%d quanta) exceeds the deadline \
             (%d quanta); the thread can never meet it"
            Aadl.Instance.pp_path path cmax deadline));
  {
    path;
    name = Naming.of_path path;
    dispatch;
    period;
    cmin;
    cmax;
    deadline;
    aadl_priority = Aadl.Props.priority props;
    processor;
    incoming_events;
    outgoing;
    out_buses;
    data_shared;
  }

let extract ~quantum root =
  let sconns = Aadl.Semconn.resolve root in
  let tasks =
    List.map (task_of_thread ~root ~quantum sconns) (Aadl.Instance.threads root)
  in
  let by_processor =
    List.filter_map
      (fun (proc, threads) ->
        if threads = [] then None
        else
          let procpath p = List.map String.lowercase_ascii p in
          let bound =
            List.filter
              (fun task ->
                procpath task.processor
                = procpath proc.Aadl.Instance.path)
              tasks
          in
          Some (proc, bound))
      (Aadl.Binding.threads_by_processor ~root)
  in
  { root; quantum; tasks; sconns; by_processor }

(* The largest quantum that represents every timing property of the model
   exactly: the gcd of all time values appearing anywhere in the instance
   tree.  The paper notes that smaller quanta improve precision at the
   cost of state space; the gcd is the coarsest lossless choice. *)
let suggest_quantum root =
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let rec times_of_pvalue = function
    | Aadl.Ast.Ptime t -> [ Aadl.Time.to_ns t ]
    | Aadl.Ast.Prange (a, b) -> times_of_pvalue a @ times_of_pvalue b
    | Aadl.Ast.Plist vs -> List.concat_map times_of_pvalue vs
    | Aadl.Ast.Pint _ | Aadl.Ast.Preal _ | Aadl.Ast.Pbool _
    | Aadl.Ast.Pstring _ | Aadl.Ast.Penum _ | Aadl.Ast.Preference _ ->
        []
  in
  let acc =
    Aadl.Instance.fold
      (fun acc inst ->
        List.fold_left
          (fun acc (p : Aadl.Ast.prop) ->
            List.fold_left
              (fun acc ns -> if ns > 0 then gcd acc ns else acc)
              acc
              (times_of_pvalue p.Aadl.Ast.pvalue))
          acc inst.Aadl.Instance.props)
      0 root
  in
  if acc = 0 then Aadl.Time.of_ms 1 else Aadl.Time.of_ns acc

let find_task t path =
  List.find_opt
    (fun task ->
      List.map String.lowercase_ascii task.path
      = List.map String.lowercase_ascii path)
    t.tasks

(* Utilization of a task set on one processor, using maximum execution
   times; background and aperiodic tasks contribute only if they carry a
   period. *)
let utilization tasks =
  List.fold_left
    (fun acc task ->
      match task.period with
      | Some p -> acc +. (float_of_int task.cmax /. float_of_int p)
      | None -> acc)
    0.0 tasks

let pp_task ppf task =
  Fmt.pf ppf "%a: %a cet=[%d,%d] deadline=%d%a on %a" Aadl.Instance.pp_path
    task.path Aadl.Props.pp_dispatch_protocol task.dispatch task.cmin
    task.cmax task.deadline
    Fmt.(option (any " period=" ++ int))
    task.period Aadl.Instance.pp_path task.processor

let pp ppf t =
  Fmt.pf ppf "@[<v>quantum=%a@,%a@]" Aadl.Time.pp t.quantum
    Fmt.(list ~sep:cut pp_task)
    t.tasks
