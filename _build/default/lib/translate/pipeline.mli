(** AADL-to-ACSR translation (paper, Algorithm 1). *)

open Acsr

exception Error of string

type t = {
  workload : Workload.t;
  defs : Defs.t;
  system : Proc.t;
  registry : Naming.registry;
  restricted : Label.Set.t;
  assignments : (string list * Sched_policy.assignment list) list;
  num_thread_processes : int;
  num_dispatchers : int;
  num_queues : int;
  num_stimuli : int;
}

type probe_point = Dispatched | Completed

type probe = {
  probe_thread : string list;
  probe_point : probe_point;
  probe_label : Label.t;
}

type options = {
  quantum : Aadl.Time.t option;
      (** scheduling quantum; default {!Workload.suggest_quantum} *)
  force_protocol : Aadl.Props.scheduling_protocol option;
      (** override every processor's Scheduling_Protocol (for policy
          comparisons) *)
  probes : probe list;
      (** extra observable events fired at dispatch/completion of chosen
          threads; not restricted, so an observer can synchronize on them *)
}

val default_options : options

val translate : ?options:options -> Aadl.Instance.t -> t
(** Translate a checked, instantiated model.  The result's [system] is the
    closed parallel composition of thread skeletons, dispatchers, queues
    and stimuli, restricted over all generated labels: it is deadlock-free
    iff the model meets all its deadlines.
    @raise Error when the model violates the translation preconditions. *)

val pp_summary : t Fmt.t
