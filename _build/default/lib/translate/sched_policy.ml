(* Encodings of scheduling policies as priority assignment rules (paper,
   Section 5).

   A policy determines, for each thread bound to a processor, the priority
   of every access to that processor's resource in the thread's timed
   actions.  Fixed-priority policies yield integer constants; dynamic
   policies yield expressions over the parameters of the thread's Compute
   process: [t] (time since dispatch) and [e] (accumulated execution).

   ACSR preemption needs priorities >= 1 for a computing step to preempt
   idling, so every encoding below is offset to start at 1; offsets shift
   all priorities of a processor uniformly and do not change the relative
   preemption order. *)

open Acsr

type assignment = {
  task : Workload.task;
  cpu_priority : Expr.t;
      (** may reference the Compute-process parameters [e] and [t] *)
}

exception Unsupported of string

(* Distinct static priorities 1..n: [rank] orders tasks from lowest to
   highest priority; ties broken by instance path for determinism. *)
let static_by cmp tasks =
  let ordered =
    List.stable_sort
      (fun a b ->
        match cmp a b with
        | 0 -> Stdlib.compare a.Workload.path b.Workload.path
        | c -> c)
      tasks
  in
  (* ordered from highest-priority first; assign n..1 *)
  let n = List.length ordered in
  List.mapi
    (fun i task -> { task; cpu_priority = Expr.Int (n - i) })
    ordered

(* Periodic distance for rate-monotonic ordering: threads without a period
   (aperiodic, background) sort below every periodic thread. *)
let period_key task =
  match task.Workload.period with Some p -> p | None -> max_int

let rate_monotonic tasks =
  static_by (fun a b -> Int.compare (period_key a) (period_key b)) tasks

let deadline_monotonic tasks =
  static_by
    (fun a b -> Int.compare a.Workload.deadline b.Workload.deadline)
    tasks

(* Highest value of the AADL Priority property = highest priority. *)
let highest_priority_first tasks =
  let key task =
    match task.Workload.aadl_priority with Some p -> p | None -> min_int
  in
  static_by (fun a b -> Int.compare (key b) (key a)) tasks

(* EDF: pi = dmax - (d_i - t) + 1.  The earlier the absolute deadline of
   the current dispatch, the larger the priority (paper, Section 5). *)
let edf tasks =
  let dmax =
    List.fold_left (fun m task -> max m task.Workload.deadline) 0 tasks
  in
  List.map
    (fun task ->
      let base = dmax - task.Workload.deadline + 1 in
      { task; cpu_priority = Expr.(Add (Int base, Var "t")) })
    tasks

(* LLF: laxity_i = (d_i - t) - (cmax_i - e); the smaller the laxity, the
   higher the priority: pi = dmax - laxity_i + 1. *)
let llf tasks =
  let dmax =
    List.fold_left (fun m task -> max m task.Workload.deadline) 0 tasks
  in
  List.map
    (fun task ->
      let base = dmax - task.Workload.deadline + task.Workload.cmax + 1 in
      {
        task;
        cpu_priority = Expr.(Sub (Add (Int base, Var "t"), Var "e"));
      })
    tasks

(* {1 Hierarchical scheduling (extension; paper Section 7 future work)}

   Two levels: a fixed priority order across groups of threads, and a
   local policy within each group, encoded by priority *bands*: group i
   (counting from the lowest) gets priorities in ((i-1)*B, i*B], where B
   bounds the local priority values of every group.  A thread of a
   higher-ranked group then preempts any thread of a lower-ranked one,
   while the relative order within a group is the local policy's — the
   "new priority encodings" the paper anticipates for hierarchical
   scheduling.  (Priority bands provide the scheduling order, not
   temporal isolation: budgets are out of scope.) *)

type group = {
  group_name : string list;
  group_rank : int;  (** higher = scheduled first *)
  local_protocol : Aadl.Props.scheduling_protocol;
  members : Workload.task list;
}

(* An inclusive upper bound on the values a local assignment's priority
   expression can take: static ranks are bounded by the member count; the
   EDF expression base + t is bounded by dmax + 1 (t is capped at the
   deadline); LLF additionally adds cmax. *)
let local_bound protocol members =
  let dmax =
    List.fold_left (fun m t -> max m t.Workload.deadline) 0 members
  in
  let cmax =
    List.fold_left (fun m t -> max m t.Workload.cmax) 0 members
  in
  match protocol with
  | Aadl.Props.Rate_monotonic | Aadl.Props.Deadline_monotonic
  | Aadl.Props.Highest_priority_first ->
      max 1 (List.length members)
  | Aadl.Props.Edf -> dmax + 1
  | Aadl.Props.Llf -> dmax + cmax + 1
  | Aadl.Props.Hierarchical ->
      raise (Unsupported "nested hierarchical scheduling")

let rec assign protocol tasks =
  match protocol with
  | Aadl.Props.Rate_monotonic -> rate_monotonic tasks
  | Aadl.Props.Deadline_monotonic -> deadline_monotonic tasks
  | Aadl.Props.Highest_priority_first -> highest_priority_first tasks
  | Aadl.Props.Edf -> edf tasks
  | Aadl.Props.Llf -> llf tasks
  | Aadl.Props.Hierarchical ->
      raise
        (Unsupported
           "hierarchical scheduling needs explicit groups; use \
            Sched_policy.hierarchical")

and hierarchical (groups : group list) =
  let band =
    List.fold_left
      (fun b g -> max b (local_bound g.local_protocol g.members))
      1 groups
  in
  (* groups ordered from lowest to highest rank; ties broken by name *)
  let ordered =
    List.stable_sort
      (fun a b ->
        match Int.compare a.group_rank b.group_rank with
        | 0 -> Stdlib.compare a.group_name b.group_name
        | c -> c)
      groups
  in
  List.concat
    (List.mapi
       (fun i g ->
         let offset = i * band in
         List.map
           (fun a ->
             match a.cpu_priority with
             | Expr.Int n -> { a with cpu_priority = Expr.Int (offset + n) }
             | e when offset = 0 -> { a with cpu_priority = e }
             | e ->
                 { a with cpu_priority = Expr.Add (Expr.Int offset, e) })
           (assign g.local_protocol g.members))
       ordered)

let find assignments (task : Workload.task) =
  match
    List.find_opt
      (fun a -> a.task.Workload.path = task.Workload.path)
      assignments
  with
  | Some a -> a.cpu_priority
  | None ->
      raise
        (Unsupported
           (Fmt.str "no priority assigned to %a" Aadl.Instance.pp_path
              task.Workload.path))

let pp_assignment ppf a =
  Fmt.pf ppf "%a -> %a" Aadl.Instance.pp_path a.task.Workload.path Expr.pp
    a.cpu_priority
