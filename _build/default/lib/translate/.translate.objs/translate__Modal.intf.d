lib/translate/modal.mli: Aadl Acsr Label Naming Proc
