lib/translate/workload.mli: Aadl Fmt
