lib/translate/workload.ml: Aadl Fmt List Naming Option Stdlib String
