lib/translate/equeue.ml: Aadl Acsr Action Expr Guard Naming Option Proc
