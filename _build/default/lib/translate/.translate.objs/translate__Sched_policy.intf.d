lib/translate/sched_policy.mli: Aadl Acsr Expr Fmt Workload
