lib/translate/skeleton.mli: Acsr Expr Label Naming Proc Workload
