lib/translate/sched_policy.ml: Aadl Acsr Expr Fmt Int List Stdlib Workload
