lib/translate/pipeline.ml: Aadl Acsr Defs Dispatcher Equeue Fmt Hashtbl Label List Modal Naming Option Proc Sched_policy Skeleton Stdlib String Workload
