lib/translate/skeleton.ml: Aadl Acsr Action Expr Guard Label List Naming Proc Stdlib Workload
