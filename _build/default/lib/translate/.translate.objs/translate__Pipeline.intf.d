lib/translate/pipeline.mli: Aadl Acsr Defs Fmt Label Naming Proc Sched_policy Workload
