lib/translate/naming.ml: Aadl Acsr Fmt Hashtbl Label Resource String
