lib/translate/modal.ml: Aadl Acsr Action Expr Fmt Guard Label List Naming Option Proc Stdlib String
