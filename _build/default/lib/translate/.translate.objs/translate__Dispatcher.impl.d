lib/translate/dispatcher.ml: Aadl Acsr Action Expr Fmt Guard Label List Naming Proc Workload
