lib/translate/dispatcher.mli: Acsr Label Naming Proc Workload
