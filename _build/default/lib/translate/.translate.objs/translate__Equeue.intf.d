lib/translate/equeue.mli: Aadl Acsr Naming
