lib/translate/naming.mli: Acsr Fmt Label Resource
