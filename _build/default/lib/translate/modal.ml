(* Mode support — an extension beyond the paper's translation scope.

   The paper describes AADL modes (Section 2: active components change
   during execution in response to events; the standard prescribes
   activation/deactivation rules) but explicitly omits them from the
   translation (Section 4.1: "we do not discuss handling of modes ...
   which is, in general, quite involved").  We implement the single-modal-
   component case:

   - exactly one component of the instance tree declares modes; its
     subcomponents carry [in modes (...)] activity clauses, which
     propagate to the threads below them;
   - a mode transition [m1 -[ sub.port ]-> m2] is triggered by an event
     raised on an out event port of a thread or device subcomponent, or
     by the environment for ports with no internal source;
   - the generated *mode manager* process tracks the current mode; when a
     trigger fires it delivers deactivation events to the threads leaving
     the mode and activation events to the threads entering it, urgently
     but patiently (it idles until each dispatcher can accept, so a thread
     completes its current dispatch before deactivating, per the
     standard's rules);
   - dispatchers are gated: an inactive thread is not dispatched; its
     dispatcher waits in an Inactive state for the activation event.

   Connections with [in modes] clauses are not interpreted (the connection
   is treated as present in all modes); multi-modal hierarchies are
   rejected. *)

open Acsr

exception Unsupported of string

type trigger =
  | Internal of { source : string list; port : string; label : Label.t }
      (** raised by a thread during computation *)
  | Environment of { port : string; label : Label.t }
      (** no internal source: the environment may raise it at any time *)
  | Device_source of {
      source : string list;
      port : string;
      label : Label.t;
      period : int option;
    }

type transition = { src : string; dst : string; triggers : trigger list }

type t = {
  host : Aadl.Instance.t;
  mode_names : string list;
  initial : string;
  transitions : transition list;
  (* thread path -> modes in which it is active (empty = all) *)
  thread_activity : (string list * string list) list;
}

let lc = String.lowercase_ascii
let lc_path = List.map lc

(* {1 Detection} *)

let find root =
  match List.filter Aadl.Instance.is_modal (Aadl.Instance.all root) with
  | [] -> None
  | [ host ] -> Some host
  | hosts ->
      raise
        (Unsupported
           (Fmt.str "several modal components (%a): only one is supported"
              Fmt.(
                list ~sep:comma (fun ppf (i : Aadl.Instance.t) ->
                    Aadl.Instance.pp_path ppf i.Aadl.Instance.path))
              hosts))

(* The modes in which a thread below the modal component is active: the
   [in modes] clause of the subcomponent of [host] on the path to the
   thread.  Deeper [in modes] clauses are not interpreted. *)
let thread_modes ~(host : Aadl.Instance.t) (thread : Aadl.Instance.t) =
  let hp = lc_path host.Aadl.Instance.path in
  let tp = lc_path thread.Aadl.Instance.path in
  let rec strip_prefix pre l =
    match (pre, l) with
    | [], rest -> Some rest
    | p :: pre', x :: l' when p = x -> strip_prefix pre' l'
    | _ -> None
  in
  match strip_prefix hp tp with
  | None | Some [] -> [] (* not below the modal component: always active *)
  | Some (first :: deeper) -> (
      (* reject uninterpreted deeper clauses *)
      let rec check_deeper (inst : Aadl.Instance.t) = function
        | [] -> ()
        | seg :: rest -> (
            match
              List.find_opt
                (fun c -> lc c.Aadl.Instance.name = seg)
                inst.Aadl.Instance.children
            with
            | Some child ->
                if child.Aadl.Instance.in_modes <> [] then
                  raise
                    (Unsupported
                       (Fmt.str
                          "%a: nested 'in modes' below the modal component \
                           is not supported"
                          Aadl.Instance.pp_path child.Aadl.Instance.path));
                check_deeper child rest
            | None -> ())
      in
      match
        List.find_opt
          (fun c -> lc c.Aadl.Instance.name = first)
          host.Aadl.Instance.children
      with
      | Some child ->
          check_deeper child deeper;
          child.Aadl.Instance.in_modes
      | None -> [])

(* {1 Trigger resolution} *)

let trigger_label ~(host : Aadl.Instance.t) (ce : Aadl.Ast.conn_end) =
  let base =
    match ce.Aadl.Ast.ce_sub with
    | Some sub -> Naming.of_path (host.Aadl.Instance.path @ [ sub ]) ^ "_" ^ ce.Aadl.Ast.ce_feature
    | None -> Naming.of_path host.Aadl.Instance.path ^ "_" ^ ce.Aadl.Ast.ce_feature
  in
  Label.make ("modetrig_" ^ Naming.sanitize base)

let resolve_trigger ~root ~(host : Aadl.Instance.t) ~quantum
    (ce : Aadl.Ast.conn_end) =
  let label = trigger_label ~host ce in
  match ce.Aadl.Ast.ce_sub with
  | None -> Environment { port = ce.Aadl.Ast.ce_feature; label }
  | Some sub -> (
      let path = host.Aadl.Instance.path @ [ sub ] in
      match Aadl.Instance.find root path with
      | None ->
          raise
            (Unsupported
               (Fmt.str "mode transition trigger %s.%s does not resolve" sub
                  ce.Aadl.Ast.ce_feature))
      | Some inst -> (
          match inst.Aadl.Instance.category with
          | Aadl.Ast.Thread ->
              Internal { source = path; port = ce.Aadl.Ast.ce_feature; label }
          | Aadl.Ast.Device ->
              let period =
                Option.map
                  (Aadl.Time.to_quanta_floor ~quantum)
                  (Aadl.Props.period inst.Aadl.Instance.props)
              in
              Device_source
                { source = path; port = ce.Aadl.Ast.ce_feature; label; period }
          | c ->
              raise
                (Unsupported
                   (Fmt.str
                      "mode transition trigger %s.%s is a %a; only thread \
                       and device triggers are supported"
                      sub ce.Aadl.Ast.ce_feature Aadl.Ast.pp_category c))))

let analyze ~root ~quantum (host : Aadl.Instance.t) : t =
  let mode_names =
    List.map (fun m -> m.Aadl.Ast.mode_name) host.Aadl.Instance.modes
  in
  let initial =
    match Aadl.Instance.initial_mode host with
    | Some m -> m
    | None -> raise (Unsupported "modal component without modes")
  in
  let valid m =
    if not (List.exists (fun n -> lc n = lc m) mode_names) then
      raise
        (Unsupported
           (Fmt.str "mode transition references unknown mode %s" m))
  in
  let transitions =
    List.map
      (fun (mt : Aadl.Ast.mode_transition) ->
        valid mt.Aadl.Ast.mt_src;
        valid mt.Aadl.Ast.mt_dst;
        {
          src = mt.Aadl.Ast.mt_src;
          dst = mt.Aadl.Ast.mt_dst;
          triggers =
            List.map
              (resolve_trigger ~root ~host ~quantum)
              mt.Aadl.Ast.mt_triggers;
        })
      host.Aadl.Instance.transitions
  in
  let thread_activity =
    List.map
      (fun th -> (th.Aadl.Instance.path, thread_modes ~host th))
      (Aadl.Instance.threads root)
  in
  { host; mode_names; initial; transitions; thread_activity }

let active_in t ~mode ~thread =
  match
    List.find_opt (fun (p, _) -> lc_path p = lc_path thread) t.thread_activity
  with
  | Some (_, []) -> true
  | Some (_, modes) -> List.exists (fun m -> lc m = lc mode) modes
  | None -> true

let initially_active t ~thread = active_in t ~mode:t.initial ~thread

let restricted_threads t =
  List.filter_map
    (fun (p, modes) -> if modes = [] then None else Some p)
    t.thread_activity

(* Trigger ports raised by a given thread (for the skeleton's event
   self-loops). *)
let internal_triggers_of t ~thread =
  List.concat_map
    (fun tr ->
      List.filter_map
        (function
          | Internal { source; label; _ } when lc_path source = lc_path thread
            ->
              Some label
          | Internal _ | Environment _ | Device_source _ -> None)
        tr.triggers)
    t.transitions
  |> List.sort_uniq Stdlib.compare

(* {1 Generated processes} *)

let manager_name t mode =
  "MM_" ^ Naming.of_path t.host.Aadl.Instance.path ^ "_" ^ Naming.sanitize mode

let switch_name t src dst step =
  Fmt.str "MMsw_%s_%s_%s_%d"
    (Naming.of_path t.host.Aadl.Instance.path)
    (Naming.sanitize src) (Naming.sanitize dst) step

let activate_label thread = Label.make ("activate_" ^ Naming.of_path thread)

let deactivate_label thread =
  Label.make ("deactivate_" ^ Naming.of_path thread)

type generated = {
  defs : (string * string list * Proc.t) list;
  initial : Proc.t;
  stimuli : (string * string list * Proc.t) list;
  stimuli_initials : Proc.t list;
  internal_labels : Label.t list;
}

(* The control events delivered during the switch src -> dst, in order:
   deactivations first, then activations. *)
let switch_controls t ~src ~dst =
  let deact =
    List.filter
      (fun p -> active_in t ~mode:src ~thread:p && not (active_in t ~mode:dst ~thread:p))
      (restricted_threads t)
  in
  let act =
    List.filter
      (fun p -> (not (active_in t ~mode:src ~thread:p)) && active_in t ~mode:dst ~thread:p)
      (restricted_threads t)
  in
  List.map deactivate_label deact @ List.map activate_label act

let generate ~(registry : Naming.registry) (t : t) : generated =
  (* switch sequences: deliver each control event urgently but patiently *)
  let switch_defs = ref [] in
  let transition_branches_of mode =
    List.filter_map
      (fun tr ->
        if lc tr.src <> lc mode then None
        else begin
          let controls = switch_controls t ~src:tr.src ~dst:tr.dst in
          let n = List.length controls in
          (* define MMsw_src_dst_k for k = 0..n-1 *)
          List.iteri
            (fun k control ->
              let next =
                if k = n - 1 then Proc.call (manager_name t tr.dst) []
                else Proc.call (switch_name t tr.src tr.dst (k + 1)) []
              in
              let body =
                Proc.choice
                  (Proc.send ~prio:(Expr.Int 1) control next)
                  (Proc.act Action.idle
                     (Proc.call (switch_name t tr.src tr.dst k) []))
              in
              switch_defs :=
                (switch_name t tr.src tr.dst k, [], body) :: !switch_defs)
            controls;
          let target =
            if n = 0 then Proc.call (manager_name t tr.dst) []
            else Proc.call (switch_name t tr.src tr.dst 0) []
          in
          (* one branch per trigger of this transition; the label may be
             shared by several transitions, so the registry entry names
             the triggering port, not a direction *)
          Some
            (List.map
               (fun trig ->
                 let label, description =
                   match trig with
                   | Internal { source; port; label } ->
                       ( label,
                         Fmt.str "triggered by %s.%s"
                           (Aadl.Instance.path_to_string source)
                           port )
                   | Environment { port; label } ->
                       (label, Fmt.str "triggered by environment port %s" port)
                   | Device_source { source; port; label; _ } ->
                       ( label,
                         Fmt.str "triggered by device %s.%s"
                           (Aadl.Instance.path_to_string source)
                           port )
                 in
                 Naming.register registry (Label.name label)
                   (Naming.Mode_trigger description);
                 Proc.receive label target)
               tr.triggers)
        end)
      t.transitions
    |> List.concat
  in
  let manager_defs =
    List.map
      (fun mode ->
        let branches = transition_branches_of mode in
        let body =
          Proc.choice_list
            (branches
            @ [ Proc.act Action.idle (Proc.call (manager_name t mode) []) ])
        in
        (manager_name t mode, [], body))
      t.mode_names
  in
  (* environment / device stimuli for triggers without a thread source *)
  let stim_defs = ref [] and stim_inits = ref [] in
  List.iter
    (fun tr ->
      List.iter
        (function
          | Internal _ -> ()
          | Environment { port; label } ->
              let sname =
                "StimMode_" ^ Naming.sanitize port ^ "_"
                ^ Naming.of_path t.host.Aadl.Instance.path
              in
              if not (List.exists (fun (n, _, _) -> n = sname) !stim_defs) then begin
                let body =
                  Proc.choice
                    (Proc.send label (Proc.call sname []))
                    (Proc.act Action.idle (Proc.call sname []))
                in
                stim_defs := (sname, [], body) :: !stim_defs;
                stim_inits := Proc.call sname [] :: !stim_inits
              end
          | Device_source { source; port; label; period } -> (
              let sname = Naming.stimulus source port in
              if not (List.exists (fun (n, _, _) -> n = sname) !stim_defs)
              then
                match period with
                | Some p when p > 0 ->
                    let var_k = Expr.Var "k" in
                    let body =
                      Proc.choice
                        (Proc.if_
                           Guard.(ge var_k (Expr.Int p))
                           (Proc.send ~prio:(Expr.Int 1) label
                              (Proc.call sname [ Expr.Int 0 ])))
                        (Proc.if_
                           Guard.(lt var_k (Expr.Int p))
                           (Proc.act Action.idle
                              (Proc.call sname
                                 [ Expr.Add (var_k, Expr.Int 1) ])))
                    in
                    stim_defs := (sname, [ "k" ], body) :: !stim_defs;
                    stim_inits := Proc.call sname [ Expr.Int p ] :: !stim_inits
                | Some _ | None ->
                    let body =
                      Proc.choice
                        (Proc.send label (Proc.call sname []))
                        (Proc.act Action.idle (Proc.call sname []))
                    in
                    stim_defs := (sname, [], body) :: !stim_defs;
                    stim_inits := Proc.call sname [] :: !stim_inits))
        tr.triggers)
    t.transitions;
  (* registry entries for activation control events *)
  List.iter
    (fun p ->
      Naming.register_label registry (activate_label p) (Naming.Activate_of p);
      Naming.register_label registry (deactivate_label p)
        (Naming.Deactivate_of p))
    (restricted_threads t);
  let control_labels =
    List.concat_map
      (fun p -> [ activate_label p; deactivate_label p ])
      (restricted_threads t)
  in
  let trigger_labels =
    List.concat_map
      (fun tr ->
        List.map
          (function
            | Internal { label; _ }
            | Environment { label; _ }
            | Device_source { label; _ } ->
                label)
          tr.triggers)
      t.transitions
  in
  {
    defs = manager_defs @ List.rev !switch_defs;
    initial = Proc.call (manager_name t t.initial) [];
    stimuli = List.rev !stim_defs;
    stimuli_initials = List.rev !stim_inits;
    internal_labels =
      List.sort_uniq Stdlib.compare (control_labels @ trigger_labels);
  }
