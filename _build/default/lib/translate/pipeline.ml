(* The translation of AADL instance models into ACSR (paper, Algorithm 1).

   For every processor p and every thread t bound to p:
     - generate the thread skeleton S_t (Section 4.2, our Skeleton module),
       refined with the events and bus resources of t's connections;
     - generate the dispatcher D_t for t's incoming event connections
       (Section 4.3, our Dispatcher module);
   and for every semantic event or event-data connection with a thread
   destination, generate its queue process (Section 4.4, our Equeue
   module).  Connections originating at devices are closed with stimulus
   generators so the composed model is self-contained.

   The composed system restricts all internally generated labels, forcing
   dispatch, completion and queue synchronizations; the resulting closed
   term is deadlock-free iff every thread meets its deadline (Section 5). *)

open Acsr

exception Error of string

type t = {
  workload : Workload.t;
  defs : Defs.t;
  system : Proc.t;  (** the closed composition to analyze *)
  registry : Naming.registry;
  restricted : Label.Set.t;
  assignments : (string list * Sched_policy.assignment list) list;
      (** per-processor priority assignments *)
  num_thread_processes : int;
  num_dispatchers : int;
  num_queues : int;
  num_stimuli : int;
}

let is_thread_at root path =
  match Aadl.Instance.find root path with
  | Some i -> i.Aadl.Instance.category = Aadl.Ast.Thread
  | None -> false

let is_device_at root path =
  match Aadl.Instance.find root path with
  | Some i -> i.Aadl.Instance.category = Aadl.Ast.Device
  | None -> false

let dedup_by key items =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun item ->
      let k = key item in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    items

(* Scheduling protocol overriding: analyses compare policies by re-running
   the translation with a forced protocol. *)
type probe_point = Dispatched | Completed

type probe = {
  probe_thread : string list;
  probe_point : probe_point;
  probe_label : Label.t;
}

type options = {
  quantum : Aadl.Time.t option;
  force_protocol : Aadl.Props.scheduling_protocol option;
  probes : probe list;
      (** extra observable events fired by the generated processes; used
          by latency observers.  Probe labels are not restricted. *)
}

let default_options = { quantum = None; force_protocol = None; probes = [] }

let probes_for options path point =
  List.filter_map
    (fun p ->
      if
        p.probe_point = point
        && List.map String.lowercase_ascii p.probe_thread
           = List.map String.lowercase_ascii path
      then Some p.probe_label
      else None)
    options.probes

let translate ?(options = default_options) (root : Aadl.Instance.t) : t =
  let diags = Aadl.Check.run root in
  if not (Aadl.Check.is_ok diags) then
    raise
      (Error
         (Fmt.str "model is not translatable:@,%a" Aadl.Check.pp_report
            (Aadl.Check.errors diags)));
  let quantum =
    match options.quantum with
    | Some q -> q
    | None -> Workload.suggest_quantum root
  in
  let wl =
    try Workload.extract ~quantum root
    with Workload.Error msg -> raise (Error msg)
  in
  let registry = Naming.create_registry () in
  (* mode support (extension): at most one modal component *)
  let modal =
    match Modal.find root with
    | None -> None
    | Some host -> Some (Modal.analyze ~root ~quantum host)
    | exception Modal.Unsupported msg -> raise (Error msg)
  in
  let modal_gate_for task =
    match modal with
    | None -> None
    | Some m ->
        let path = task.Workload.path in
        if
          List.exists
            (fun p -> p = path)
            (Modal.restricted_threads m)
        then
          Some
            {
              Dispatcher.activate = Modal.activate_label path;
              deactivate = Modal.deactivate_label path;
              initially_active = Modal.initially_active m ~thread:path;
            }
        else None
  in
  let trigger_labels_for task =
    match modal with
    | None -> []
    | Some m -> Modal.internal_triggers_of m ~thread:task.Workload.path
  in
  (* priority assignment rule per processor (Section 5); hierarchical
     scheduling (Section 7 future work) groups a processor's threads by
     their nearest process-category ancestor, ranked by the process's
     Priority property, with the process's own Scheduling_Protocol as the
     local policy *)
  let hierarchical_groups tasks =
    let group_host (task : Workload.task) =
      (* nearest ancestor of category Process on the thread's path *)
      let rec walk inst path best =
        match path with
        | [] -> best
        | seg :: rest -> (
            match
              List.find_opt
                (fun (c : Aadl.Instance.t) ->
                  String.lowercase_ascii c.Aadl.Instance.name
                  = String.lowercase_ascii seg)
                inst.Aadl.Instance.children
            with
            | Some child ->
                let best =
                  if child.Aadl.Instance.category = Aadl.Ast.Process then
                    Some child
                  else best
                in
                walk child rest best
            | None -> best)
      in
      walk root task.Workload.path None
    in
    let table = Hashtbl.create 8 in
    List.iter
      (fun task ->
        let key, rank, local =
          match group_host task with
          | Some proc ->
              ( proc.Aadl.Instance.path,
                Option.value ~default:0
                  (Aadl.Props.priority proc.Aadl.Instance.props),
                Option.value ~default:Aadl.Props.Rate_monotonic
                  (Aadl.Props.scheduling_protocol proc.Aadl.Instance.props) )
          | None -> (task.Workload.path, 0, Aadl.Props.Rate_monotonic)
        in
        let prev =
          match Hashtbl.find_opt table key with
          | Some (r, l, members) -> (r, l, task :: members)
          | None -> (rank, local, [ task ])
        in
        Hashtbl.replace table key prev)
      tasks;
    Hashtbl.fold
      (fun key (rank, local, members) acc ->
        {
          Sched_policy.group_name = key;
          group_rank = rank;
          local_protocol = local;
          members = List.rev members;
        }
        :: acc)
      table []
    |> List.sort (fun a b ->
           Stdlib.compare a.Sched_policy.group_name b.Sched_policy.group_name)
  in
  let assignments =
    List.map
      (fun ((proc : Aadl.Instance.t), tasks) ->
        let protocol =
          match options.force_protocol with
          | Some p -> p
          | None -> (
              match Aadl.Props.scheduling_protocol proc.Aadl.Instance.props with
              | Some p -> p
              | None ->
                  raise
                    (Error
                       (Fmt.str "%a: missing Scheduling_Protocol"
                          Aadl.Instance.pp_path proc.Aadl.Instance.path)))
        in
        let assignment =
          match protocol with
          | Aadl.Props.Hierarchical -> (
              try Sched_policy.hierarchical (hierarchical_groups tasks)
              with Sched_policy.Unsupported msg -> raise (Error msg))
          | p -> Sched_policy.assign p tasks
        in
        (proc.Aadl.Instance.path, assignment))
      wl.Workload.by_processor
  in
  let all_assignments = List.concat_map snd assignments in
  (* thread skeletons and dispatchers *)
  let units =
    List.map
      (fun task ->
        let cpu_priority = Sched_policy.find all_assignments task in
        let sk =
          Skeleton.generate
            ~extra_anytime:(trigger_labels_for task)
            ~completion_probes:
              (probes_for options task.Workload.path Completed)
            ~registry ~task ~cpu_priority ()
        in
        let disp =
          try
            Dispatcher.generate ?modal:(modal_gate_for task)
              ~dispatch_probes:
                (probes_for options task.Workload.path Dispatched)
              ~registry ~task ~dispatch:sk.Skeleton.dispatch
              ~done_:sk.Skeleton.done_ ()
          with Dispatcher.Invalid msg -> raise (Error msg)
        in
        (task, sk, disp))
      wl.Workload.tasks
  in
  (* queue processes: event-like semantic connections ending at threads *)
  let queued_conns =
    wl.Workload.sconns
    |> List.filter (fun sc ->
           Aadl.Semconn.is_event_like sc
           && is_thread_at root sc.Aadl.Semconn.dst.Aadl.Semconn.inst)
    |> dedup_by Aadl.Semconn.name
  in
  let queues = List.map (Equeue.queue ~registry ~root) queued_conns in
  (* stimuli closing device-sourced queued connections *)
  let device_conns =
    List.filter
      (fun sc -> is_device_at root sc.Aadl.Semconn.src.Aadl.Semconn.inst)
      queued_conns
  in
  let stimuli =
    List.map (Equeue.stimulus ~registry ~root ~quantum) device_conns
  in
  (* definitions environment *)
  let add_defs env (name, formals, body) =
    try Defs.add env ~name ~formals body
    with Defs.Duplicate n ->
      raise (Error (Fmt.str "duplicate generated process %s" n))
  in
  let modal_generated = Option.map (Modal.generate ~registry) modal in
  let defs =
    List.fold_left add_defs Defs.empty
      (List.concat_map
         (fun (_, sk, disp) -> sk.Skeleton.defs @ disp.Dispatcher.defs)
         units
      @ List.concat_map (fun q -> q.Equeue.defs) queues
      @ List.concat_map (fun s -> s.Equeue.defs) stimuli
      @ (match modal_generated with
        | Some g -> g.Modal.defs @ g.Modal.stimuli
        | None -> []))
  in
  (* internal labels: dispatch/done per thread, enqueue/dequeue per queued
     connection *)
  let restricted =
    Label.set_of_list
      (List.concat_map
         (fun (_, sk, _) -> [ sk.Skeleton.dispatch; sk.Skeleton.done_ ])
         units
      @ List.concat_map
          (fun sc ->
            let n = Aadl.Semconn.name sc in
            [ Naming.enqueue_label n; Naming.dequeue_label n ])
          queued_conns
      @ (match modal_generated with
        | Some g -> g.Modal.internal_labels
        | None -> []))
  in
  let processes =
    List.concat_map
      (fun (_, sk, disp) -> [ sk.Skeleton.initial; disp.Dispatcher.initial ])
      units
    @ List.map (fun q -> q.Equeue.initial) queues
    @ List.map (fun s -> s.Equeue.initial) stimuli
    @ (match modal_generated with
      | Some g -> (g.Modal.initial :: g.Modal.stimuli_initials)
      | None -> [])
  in
  let system = Proc.restrict restricted (Proc.par_list processes) in
  {
    workload = wl;
    defs;
    system;
    registry;
    restricted;
    assignments;
    num_thread_processes = List.length units;
    num_dispatchers = List.length units;
    num_queues = List.length queues;
    num_stimuli = List.length stimuli;
  }

let pp_summary ppf t =
  Fmt.pf ppf
    "%d thread processes, %d dispatchers, %d queues, %d stimuli; %d \
     definitions; quantum %a"
    t.num_thread_processes t.num_dispatchers t.num_queues t.num_stimuli
    (List.length (Defs.names t.defs))
    Aadl.Time.pp t.workload.Workload.quantum
