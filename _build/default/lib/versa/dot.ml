(* Graphviz export of explored LTSs, for visual inspection of small state
   spaces and of bisimulation quotients.  Deadlock states are highlighted;
   the initial state is marked with an incoming arrow. *)

open Acsr

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let step_label step = escape (Fmt.str "%a" Step.pp step)

(* [max_label] truncates long state terms so graphs stay readable. *)
let state_label ?(max_label = 60) lts id =
  let s = Fmt.str "%a" Proc.pp (Lts.term lts id) in
  let s =
    if String.length s > max_label then String.sub s 0 (max_label - 3) ^ "..."
    else s
  in
  escape (Fmt.str "s%d: %s" id s)

let pp ?(show_terms = false) ppf lts =
  Fmt.pf ppf "digraph lts {@.";
  Fmt.pf ppf "  rankdir=LR;@.";
  Fmt.pf ppf "  node [shape=circle, fontsize=10];@.";
  Fmt.pf ppf "  init [shape=point];@.";
  Fmt.pf ppf "  init -> s%d;@." (Lts.initial lts);
  for id = 0 to Lts.num_states lts - 1 do
    let label =
      if show_terms then state_label lts id else Fmt.str "s%d" id
    in
    let attrs =
      if Lts.is_deadlock lts id then
        ", shape=doublecircle, color=red, style=filled, fillcolor=mistyrose"
      else ""
    in
    Fmt.pf ppf "  s%d [label=\"%s\"%s];@." id label attrs
  done;
  for id = 0 to Lts.num_states lts - 1 do
    Array.iter
      (fun (step, target) ->
        Fmt.pf ppf "  s%d -> s%d [label=\"%s\"];@." id target
          (step_label step))
      (Lts.successors lts id)
  done;
  Fmt.pf ppf "}@."

let pp_quotient ppf (q : Bisim.quotient) =
  Fmt.pf ppf "digraph quotient {@.";
  Fmt.pf ppf "  rankdir=LR;@.";
  Fmt.pf ppf "  node [shape=circle, fontsize=10];@.";
  Fmt.pf ppf "  init [shape=point];@.";
  Fmt.pf ppf "  init -> b%d;@." q.Bisim.initial;
  Array.iteri
    (fun b row ->
      if row = [] then
        Fmt.pf ppf
          "  b%d [shape=doublecircle, color=red, style=filled, \
           fillcolor=mistyrose];@."
          b;
      List.iter
        (fun (step, target) ->
          Fmt.pf ppf "  b%d -> b%d [label=\"%s\"];@." b target
            (step_label step))
        row)
    q.Bisim.edges;
  Fmt.pf ppf "}@."

let to_string ?show_terms lts = Fmt.str "%a" (pp ?show_terms) lts
let write_file ?show_terms path lts =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?show_terms lts))
