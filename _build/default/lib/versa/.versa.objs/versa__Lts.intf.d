lib/versa/lts.mli: Acsr Defs Fmt Proc Step
