lib/versa/lts.ml: Acsr Array Fmt Hashtbl List Proc Queue Semantics Step
