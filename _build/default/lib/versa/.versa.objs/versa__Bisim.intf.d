lib/versa/bisim.mli: Acsr Fmt Lts Step
