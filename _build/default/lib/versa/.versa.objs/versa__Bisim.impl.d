lib/versa/bisim.ml: Acsr Array Fmt Fun Hashtbl Int List Lts Stdlib Step
