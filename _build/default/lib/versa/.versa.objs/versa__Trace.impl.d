lib/versa/trace.ml: Acsr Fmt List Lts Step
