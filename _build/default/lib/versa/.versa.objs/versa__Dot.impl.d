lib/versa/dot.ml: Acsr Array Bisim Buffer Fmt Fun List Lts Proc Step String
