lib/versa/explorer.mli: Acsr Defs Fmt Lts Proc Trace
