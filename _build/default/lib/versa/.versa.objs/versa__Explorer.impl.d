lib/versa/explorer.ml: Fmt Lts Trace Unix
