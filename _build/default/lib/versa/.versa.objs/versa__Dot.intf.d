lib/versa/dot.mli: Bisim Fmt Lts
