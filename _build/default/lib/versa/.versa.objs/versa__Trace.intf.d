lib/versa/trace.mli: Acsr Fmt Lts Step
