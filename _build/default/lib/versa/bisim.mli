(** Strong-bisimulation partition refinement over explored LTSs. *)

open Acsr

type partition = { block_of : int array; num_blocks : int }

val refine : Lts.t -> partition
(** Coarsest strong-bisimulation partition of the LTS's states. *)

type quotient = {
  num_states : int;
  initial : int;
  edges : (Step.t * int) list array;
  representative : Lts.state_id array;
}

val quotient : Lts.t -> quotient
(** The quotient automaton modulo strong bisimulation; preserves deadlock
    reachability. *)

val num_transitions : quotient -> int

val equivalent : Lts.t -> Lts.t -> bool
(** Strong bisimilarity of the initial states of two LTSs. *)

val pp_quotient : quotient Fmt.t

(** Weak (observational) bisimulation: tau steps are abstracted.  Does not
    preserve deadlock reachability — use the strong quotient for
    schedulability; this one compares observable protocols. *)
module Weak : sig
  val refine : Lts.t -> partition
  val equivalent : Lts.t -> Lts.t -> bool
end
