(** Executions extracted from an LTS, presented as timelines. *)

open Acsr

type entry = { step : Step.t; state : Lts.state_id }

type t = { lts : Lts.t; entries : entry list }

val of_path : Lts.t -> (Step.t * Lts.state_id) list -> t

val to_deadlock : Lts.t -> Lts.state_id -> t
(** Shortest trace from the initial state to the given state. *)

val steps : t -> Step.t list
val length : t -> int
val final_state : t -> Lts.state_id

val duration : t -> int
(** Number of time quanta elapsed along the trace. *)

type quantum = { at_time : int; instant : Step.t list; tick : Step.t option }

val quanta : t -> quantum list
(** The trace grouped by time quantum: the instantaneous steps occurring at
    [at_time], then the timed action advancing the clock ([None] if the
    trace ends within the quantum). *)

val pp : t Fmt.t
(** Timeline rendering, one line per quantum. *)

val pp_raw : t Fmt.t
(** One step per line, ungrouped. *)
