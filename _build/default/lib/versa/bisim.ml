(* Strong-bisimulation quotient of an LTS by naive partition refinement.

   The paper's future-work section calls for "ACSR models with more compact
   state spaces" and better exploration efficiency; quotienting modulo
   strong bisimulation is the standard state-space reduction that preserves
   deadlock reachability, so we provide it as part of the VERSA substrate.

   The algorithm is the classic Kanellakis–Smolka refinement: start from a
   single block and split blocks by the signature of their states, where a
   state's signature is the set of (step, target block) pairs it can reach.
   O(m·n) worst case, ample for the models we analyze. *)

open Acsr

type partition = { block_of : int array; num_blocks : int }

let signature block_of (succs : (Step.t * Lts.state_id) array) =
  Array.to_list succs
  |> List.map (fun (step, target) -> (step, block_of.(target)))
  |> List.sort_uniq Stdlib.compare

let refine lts =
  let n = Lts.num_states lts in
  let block_of = Array.make n 0 in
  let num_blocks = ref (if n = 0 then 0 else 1) in
  let changed = ref (n > 0) in
  while !changed do
    changed := false;
    (* Split every block by state signatures. *)
    let sig_table : (int * (Step.t * int) list, int) Hashtbl.t =
      Hashtbl.create (2 * n)
    in
    let next_blocks = ref 0 in
    let new_block_of = Array.make n 0 in
    for s = 0 to n - 1 do
      let key = (block_of.(s), signature block_of (Lts.successors lts s)) in
      let b =
        match Hashtbl.find_opt sig_table key with
        | Some b -> b
        | None ->
            let b = !next_blocks in
            incr next_blocks;
            Hashtbl.add sig_table key b;
            b
      in
      new_block_of.(s) <- b
    done;
    if !next_blocks <> !num_blocks then begin
      changed := true;
      num_blocks := !next_blocks
    end;
    Array.blit new_block_of 0 block_of 0 n
  done;
  { block_of; num_blocks = !num_blocks }

(* A compact view of the quotient automaton (not an [Lts.t], which is tied
   to process terms): block ids with deduplicated labeled edges. *)
type quotient = {
  num_states : int;
  initial : int;
  edges : (Step.t * int) list array;
  representative : Lts.state_id array;  (** one original state per block *)
}

let quotient lts =
  let part = refine lts in
  let n = Lts.num_states lts in
  let edges = Array.make part.num_blocks [] in
  let representative = Array.make part.num_blocks 0 in
  let seen = Array.make part.num_blocks false in
  for s = n - 1 downto 0 do
    let b = part.block_of.(s) in
    representative.(b) <- s;
    seen.(b) <- true
  done;
  assert (Array.for_all Fun.id seen || part.num_blocks = 0);
  Array.iteri
    (fun b s -> edges.(b) <- signature part.block_of (Lts.successors lts s))
    representative;
  {
    num_states = part.num_blocks;
    initial = (if n = 0 then 0 else part.block_of.(Lts.initial lts));
    edges;
    representative;
  }

let num_transitions q =
  Array.fold_left (fun acc row -> acc + List.length row) 0 q.edges

(* Two LTSs are strongly bisimilar iff the refinement of their disjoint
   union puts their initial states in the same block. *)
let equivalent lts_a lts_b =
  let na = Lts.num_states lts_a and nb = Lts.num_states lts_b in
  if na = 0 || nb = 0 then na = nb
  else begin
    let n = na + nb in
    let succs s =
      if s < na then Lts.successors lts_a s
      else
        Array.map
          (fun (step, t) -> (step, t + na))
          (Lts.successors lts_b (s - na))
    in
    let block_of = Array.make n 0 in
    let num_blocks = ref 1 in
    let changed = ref true in
    while !changed do
      changed := false;
      let sig_table = Hashtbl.create (2 * n) in
      let next = ref 0 in
      let fresh = Array.make n 0 in
      for s = 0 to n - 1 do
        let key = (block_of.(s), signature block_of (succs s)) in
        let b =
          match Hashtbl.find_opt sig_table key with
          | Some b -> b
          | None ->
              let b = !next in
              incr next;
              Hashtbl.add sig_table key b;
              b
        in
        fresh.(s) <- b
      done;
      if !next <> !num_blocks then begin
        changed := true;
        num_blocks := !next
      end;
      Array.blit fresh 0 block_of 0 n
    done;
    block_of.(Lts.initial lts_a) = block_of.(Lts.initial lts_b + na)
  end

let pp_quotient ppf q =
  Fmt.pf ppf "%d blocks, %d transitions" q.num_states (num_transitions q)

(* {1 Weak bisimulation}

   Internal (tau) steps are abstracted: states are weakly bisimilar when
   they match observable steps up to surrounding tau sequences.  Computed
   as strong refinement over the tau-saturated transition relation.  Note
   that weak bisimilarity does not preserve deadlock reachability (a
   deadlock reached only through tau steps collapses), so schedulability
   verdicts must use the strong quotient; the weak one is for comparing
   observable protocols. *)
module Weak = struct
  let is_tau = function Step.Tau _ -> true | _ -> false

  (* tau-closure of every state, including the state itself *)
  let tau_closures num_states succs =
    Array.init num_states (fun s ->
        let visited = Hashtbl.create 8 in
        let rec go s =
          if not (Hashtbl.mem visited s) then begin
            Hashtbl.add visited s ();
            Array.iter
              (fun (step, t) -> if is_tau step then go t)
              (succs s)
          end
        in
        go s;
        Hashtbl.fold (fun k () acc -> k :: acc) visited []
        |> List.sort Int.compare)

  (* weak observable steps: tau* a tau*; observable labels keep their
     identity (including priorities), only internal steps are erased *)
  let weak_edges num_states succs closures =
    Array.init num_states (fun s ->
        List.concat_map
          (fun s' ->
            Array.to_list (succs s')
            |> List.concat_map (fun (step, t) ->
                   if is_tau step then []
                   else List.map (fun t' -> (step, t')) closures.(t)))
          closures.(s)
        |> List.sort_uniq Stdlib.compare)

  let refine_generic num_states initial_pair succs =
    let closures = tau_closures num_states succs in
    let weak = weak_edges num_states succs closures in
    let block_of = Array.make num_states 0 in
    let num_blocks = ref (if num_states = 0 then 0 else 1) in
    let changed = ref (num_states > 0) in
    while !changed do
      changed := false;
      let table = Hashtbl.create (2 * num_states) in
      let next = ref 0 in
      let fresh = Array.make num_states 0 in
      for s = 0 to num_states - 1 do
        let obs_sig =
          List.map (fun (step, t) -> (step, block_of.(t))) weak.(s)
          |> List.sort_uniq Stdlib.compare
        in
        let tau_sig =
          List.map (fun t -> block_of.(t)) closures.(s)
          |> List.sort_uniq Int.compare
        in
        let key = (block_of.(s), obs_sig, tau_sig) in
        let b =
          match Hashtbl.find_opt table key with
          | Some b -> b
          | None ->
              let b = !next in
              incr next;
              Hashtbl.add table key b;
              b
        in
        fresh.(s) <- b
      done;
      if !next <> !num_blocks then begin
        changed := true;
        num_blocks := !next
      end;
      Array.blit fresh 0 block_of 0 num_states
    done;
    ignore initial_pair;
    { block_of; num_blocks = !num_blocks }

  let refine lts =
    refine_generic (Lts.num_states lts) None (Lts.successors lts)

  let equivalent lts_a lts_b =
    let na = Lts.num_states lts_a and nb = Lts.num_states lts_b in
    if na = 0 || nb = 0 then na = nb
    else begin
      let succs s =
        if s < na then Lts.successors lts_a s
        else
          Array.map
            (fun (step, t) -> (step, t + na))
            (Lts.successors lts_b (s - na))
      in
      let part = refine_generic (na + nb) None succs in
      part.block_of.(Lts.initial lts_a)
      = part.block_of.(Lts.initial lts_b + na)
    end
end
