(* Explicit labeled transition systems produced by state-space exploration
   of ACSR terms.

   States are closed process terms, interned into integer ids in BFS
   discovery order (the initial state has id 0).  Each state records its
   outgoing (step, successor) row and its BFS parent, so that shortest
   diagnostic traces can be rebuilt without re-exploration — this mirrors
   what the VERSA tool reports to the user (paper, Section 5). *)

open Acsr

type semantics = Prioritized | Unprioritized

type state_id = int

type t = {
  term_of : Proc.t array;  (** state id -> term *)
  edges : (Step.t * state_id) array array;  (** outgoing transitions *)
  expanded : bool array;
      (** whether the state's successors were computed; frontier states of
          a truncated exploration are not expanded *)
  parent : (state_id * Step.t) option array;  (** BFS tree, for traces *)
  depth : int array;  (** BFS depth *)
  truncated : bool;  (** true if exploration stopped before exhaustion *)
  semantics : semantics;
}

let num_states lts = Array.length lts.term_of

let num_transitions lts =
  Array.fold_left (fun n row -> n + Array.length row) 0 lts.edges

let initial (_ : t) : state_id = 0
let term lts id = lts.term_of.(id)
let successors lts id = lts.edges.(id)
let depth lts id = lts.depth.(id)
let truncated lts = lts.truncated
let semantics_of lts = lts.semantics

let is_deadlock lts id = lts.expanded.(id) && Array.length lts.edges.(id) = 0

let deadlocks lts =
  let acc = ref [] in
  for id = num_states lts - 1 downto 0 do
    if is_deadlock lts id then acc := id :: !acc
  done;
  !acc

(* Rebuild the BFS-shortest path from the initial state to [id] as a list
   of (step, reached state). *)
let path_to lts id =
  let rec up id acc =
    match lts.parent.(id) with
    | None -> acc
    | Some (pred, step) -> up pred ((step, id) :: acc)
  in
  up id []

type build_config = {
  max_states : int option;  (** stop after discovering this many states *)
  stop_at_deadlock : bool;
      (** stop expanding as soon as one deadlock has been discovered *)
}

let default_config = { max_states = Some 2_000_000; stop_at_deadlock = false }

let step_function semantics defs =
  match semantics with
  | Prioritized -> Semantics.prioritized defs
  | Unprioritized -> Semantics.steps defs

(* Growable state table. *)
module Table = struct
  type entry = {
    mutable row : (Step.t * state_id) array;
    mutable was_expanded : bool;
    mutable par : (state_id * Step.t) option;
    mutable dep : int;
    tm : Proc.t;
  }

  type nonrec t = {
    ids : (Proc.t, state_id) Hashtbl.t;
    mutable entries : entry array;
    mutable len : int;
  }

  let dummy_entry =
    { row = [||]; was_expanded = false; par = None; dep = 0; tm = Proc.Nil }

  let create () =
    { ids = Hashtbl.create 4096; entries = Array.make 1024 dummy_entry; len = 0 }

  let get t id = t.entries.(id)

  let intern t term =
    match Hashtbl.find_opt t.ids term with
    | Some id -> (id, false)
    | None ->
        if t.len = Array.length t.entries then begin
          let bigger = Array.make (2 * t.len) dummy_entry in
          Array.blit t.entries 0 bigger 0 t.len;
          t.entries <- bigger
        end;
        let id = t.len in
        t.entries.(id) <-
          { row = [||]; was_expanded = false; par = None; dep = 0; tm = term };
        Hashtbl.add t.ids term id;
        t.len <- t.len + 1;
        (id, true)
end

let build ?(config = default_config) ?(semantics = Prioritized) defs root =
  let next = step_function semantics defs in
  let table = Table.create () in
  let queue = Queue.create () in
  let truncated = ref false in
  let deadlock_found = ref false in
  let root_id, _ = Table.intern table root in
  Queue.add root_id queue;
  let over_budget () =
    match config.max_states with
    | Some m -> table.Table.len >= m
    | None -> false
  in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    if (config.stop_at_deadlock && !deadlock_found) || over_budget () then
      (* leave this state unexpanded; the exploration is incomplete *)
      truncated := true
    else begin
      let entry = Table.get table id in
      let succs = next entry.Table.tm in
      if succs = [] then deadlock_found := true;
      let row =
        List.map
          (fun (step, term') ->
            let id', fresh = Table.intern table term' in
            if fresh then begin
              let e' = Table.get table id' in
              e'.Table.par <- Some (id, step);
              e'.Table.dep <- entry.Table.dep + 1;
              Queue.add id' queue
            end;
            (step, id'))
          succs
      in
      entry.Table.row <- Array.of_list row;
      entry.Table.was_expanded <- true
    end
  done;
  let n = table.Table.len in
  let entry i = table.Table.entries.(i) in
  {
    term_of = Array.init n (fun i -> (entry i).Table.tm);
    edges = Array.init n (fun i -> (entry i).Table.row);
    expanded = Array.init n (fun i -> (entry i).Table.was_expanded);
    parent = Array.init n (fun i -> (entry i).Table.par);
    depth = Array.init n (fun i -> (entry i).Table.dep);
    truncated = !truncated;
    semantics;
  }

let pp_summary ppf lts =
  Fmt.pf ppf "%d states, %d transitions%s (%s semantics)" (num_states lts)
    (num_transitions lts)
    (if lts.truncated then " [truncated]" else "")
    (match lts.semantics with
    | Prioritized -> "prioritized"
    | Unprioritized -> "unprioritized")
