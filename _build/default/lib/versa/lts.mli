(** Explicit labeled transition systems of ACSR terms, built by breadth-first
    state-space exploration. *)

open Acsr

type semantics = Prioritized | Unprioritized

type state_id = int

type t

val num_states : t -> int
val num_transitions : t -> int

val initial : t -> state_id
(** Always state 0. *)

val term : t -> state_id -> Proc.t
val successors : t -> state_id -> (Step.t * state_id) array
val depth : t -> state_id -> int

val truncated : t -> bool
(** True when exploration stopped early (state budget exhausted or
    [stop_at_deadlock] fired); absence of deadlocks is then inconclusive. *)

val semantics_of : t -> semantics

val is_deadlock : t -> state_id -> bool
(** The state was expanded and has no outgoing transition. *)

val deadlocks : t -> state_id list
(** All deadlock states, in discovery order. *)

val path_to : t -> state_id -> (Step.t * state_id) list
(** BFS-shortest path from the initial state, as (step, reached state). *)

type build_config = {
  max_states : int option;
  stop_at_deadlock : bool;
}

val default_config : build_config
(** 2M states, explore exhaustively. *)

val build :
  ?config:build_config -> ?semantics:semantics -> Defs.t -> Proc.t -> t
(** Explore the state space of a closed term breadth-first.  [semantics]
    defaults to [Prioritized]. *)

val pp_summary : t Fmt.t
