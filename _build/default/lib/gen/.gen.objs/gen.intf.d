lib/gen/gen.mli: Aadl Acsr Random Versa
