lib/gen/paper_figs.ml: Acsr Action Array Defs Expr Label List Proc Resource Step Versa
