lib/gen/gen.ml: Aadl Array Buffer Float List Option Paper_figs Printf Random
