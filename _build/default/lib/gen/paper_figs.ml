(* The ACSR example processes of the paper's Figures 2 and 3, shared by
   the examples and the benchmark harness. *)

open Acsr

let cpu = Resource.make "cpu"
let bus = Resource.make "bus"
let done_l = Label.make "done"
let interrupt = Label.make "interrupt"
let exc = Label.make "exception"
let exception_handled = Label.make "exception_handled"
let interrupt_handled = Label.make "interrupt_handled"

let action accesses =
  Action.of_list (List.map (fun (r, p) -> (r, Expr.Int p)) accesses)

(* Figure 2a: Simple = {(cpu,1)} : {(cpu,1),(bus,1)} : done!.Simple *)
let fig2a_defs =
  Defs.of_list
    [
      ( "Simple",
        [],
        Proc.(
          act
            (action [ (cpu, 1) ])
            (act
               (action [ (cpu, 1); (bus, 1) ])
               (send done_l (call "Simple" [])))) );
    ]

let fig2a_initial = Proc.call "Simple" []

(* Figure 2b: an idling step lets Simple wait for the bus. *)
let fig2b_defs =
  Defs.of_list
    [
      ("Simple", [], Proc.(act (action [ (cpu, 1) ]) (call "Wait" [])));
      ( "Wait",
        [],
        Proc.(
          choice
            (act
               (action [ (cpu, 1); (bus, 1) ])
               (send done_l (call "Simple" [])))
            (act Action.idle (call "Wait" []))) );
    ]

let fig2b_initial = Proc.call "Simple" []

(* Figure 3: Simple (one full iteration, then a second iteration inside a
   temporal scope with exception and interrupt exits) composed with the
   driver that preempts the bus and later either forces the interrupt or
   preempts Simple into its exception alternative. *)
let fig3_defs =
  Defs.of_list
    [
      ("S0", [], Proc.(act (action [ (cpu, 1) ]) (call "S1" [])));
      ( "S1",
        [],
        Proc.(
          choice
            (act
               (action [ (cpu, 1); (bus, 1) ])
               (send ~prio:(Expr.Int 1) done_l (call "S2" [])))
            (act Action.idle (call "S1" []))) );
      ( "S2",
        [],
        Proc.scope
          ~exc:(exc, Proc.send exception_handled (Proc.call "Stop" []))
          ~interrupt:
            (Proc.receive interrupt
               (Proc.send interrupt_handled (Proc.call "Stop" [])))
          (Proc.call "B0" []) );
      ( "B0",
        [],
        Proc.(
          choice
            (act (action [ (cpu, 1) ]) (call "B1" []))
            (act Action.idle (send exc nil))) );
      ( "B1",
        [],
        Proc.(
          choice
            (act
               (action [ (cpu, 1); (bus, 1) ])
               (send ~prio:(Expr.Int 1) done_l (call "Stop" [])))
            (act Action.idle (call "B1" []))) );
      ("Stop", [], Proc.(act Action.idle (call "Stop" [])));
      ( "D0",
        [],
        Proc.(
          act
            (action [ (bus, 2) ])
            (act (action [ (bus, 2) ]) (call "DWait" []))) );
      ( "DWait",
        [],
        Proc.(
          choice
            (receive done_l (call "DChoice" []))
            (act Action.idle (call "DWait" []))) );
      ( "DChoice",
        [],
        Proc.(
          choice
            (act
               (action [ (bus, 2) ])
               (send ~prio:(Expr.Int 1) interrupt (call "Stop" [])))
            (act (action [ (cpu, 2) ]) (call "Stop" []))) );
    ]

let fig3_system =
  Proc.restrict
    (Label.Set.of_list [ done_l; interrupt ])
    (Proc.par (Proc.call "S0" []) (Proc.call "D0" []))

(* Does the LTS offer a step labeled [label] anywhere? *)
let label_reachable lts label =
  let n = Versa.Lts.num_states lts in
  let rec scan i =
    i < n
    && (Array.exists
          (fun (step, _) ->
            match step with
            | Step.Event (l, _, _) -> Label.equal l label
            | Step.Tau (Some l, _) -> Label.equal l label
            | Step.Action _ | Step.Tau (None, _) -> false)
          (Versa.Lts.successors lts i)
       || scan (i + 1))
  in
  scan 0
