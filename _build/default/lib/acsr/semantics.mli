(** Operational semantics of closed ACSR terms. *)

exception Not_closed of string
(** Raised when a term still contains free parameters. *)

exception Unguarded_recursion of string
(** Raised when unfolding definitions never reaches an action or event
    prefix (e.g. [X = X]). *)

val steps : Defs.t -> Proc.t -> (Step.t * Proc.t) list
(** The unprioritized transition relation: every step the term can take,
    deduplicated. *)

val prioritized : Defs.t -> Proc.t -> (Step.t * Proc.t) list
(** The prioritized transition relation: {!steps} minus the steps preempted
    by another enabled step.  Schedulability analysis explores this
    relation. *)

val is_deadlocked : Defs.t -> Proc.t -> bool
(** No step at all is enabled.  In translated AADL models this denotes a
    timing violation (paper, Section 5). *)

val is_time_stopped : Defs.t -> Proc.t -> bool
(** No prioritized step advances time. *)
