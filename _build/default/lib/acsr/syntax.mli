(** A concrete textual syntax for ACSR (in the spirit of the VERSA input
    language), with a round-tripping parser and printer.

    Example:
    {[
      Simple = {(cpu,1)} : {(cpu,1),(bus,1)} : done! . Simple;
      Wait(k) = [k < 4] -> {} : Wait(k + 1) + dispatch? . Wait(0);
      system = (Simple || Wait(0)) \ {dispatch, done};
    ]} *)

exception Parse_error of string * int
(** message and source line *)

val parse_string : string -> Defs.t * Proc.t option
(** Parse a file of definitions, optionally ending with a
    [system = proc;] entry. *)

val parse_proc_string : string -> Proc.t
(** Parse a single process expression. *)

val print_expr : Expr.t Fmt.t
val print_guard : Guard.t Fmt.t
val print_action : Action.t Fmt.t
val print_event : Event.t Fmt.t
val print_proc : Proc.t Fmt.t
val proc_to_string : Proc.t -> string
val print_def : Defs.def Fmt.t

val print_defs : ?system:Proc.t -> Defs.t Fmt.t
val to_string : ?system:Proc.t -> Defs.t -> string
(** [parse_string (to_string ?system defs)] reconstructs the same
    definitions (structurally equal bodies). *)
