lib/acsr/expr.ml: Fmt Stdlib String
