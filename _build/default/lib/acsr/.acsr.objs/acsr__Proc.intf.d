lib/acsr/proc.mli: Action Event Expr Fmt Guard Label Resource
