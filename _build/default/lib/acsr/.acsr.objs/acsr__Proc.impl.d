lib/acsr/proc.ml: Action Event Expr Fmt Guard Hashtbl Label List Option Resource Stdlib
