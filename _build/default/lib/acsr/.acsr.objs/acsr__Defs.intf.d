lib/acsr/defs.mli: Fmt Proc
