lib/acsr/syntax.mli: Action Defs Event Expr Fmt Guard Proc
