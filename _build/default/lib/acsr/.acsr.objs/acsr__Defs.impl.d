lib/acsr/defs.ml: Expr Fmt List Map Proc Set String
