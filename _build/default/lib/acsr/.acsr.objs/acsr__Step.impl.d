lib/acsr/step.ml: Action Event Fmt Label List Stdlib
