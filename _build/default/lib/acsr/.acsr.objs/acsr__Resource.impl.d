lib/acsr/resource.ml: Fmt List Map Set String
