lib/acsr/resource.mli: Fmt Map Set
