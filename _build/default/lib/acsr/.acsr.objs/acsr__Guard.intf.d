lib/acsr/guard.mli: Expr Fmt
