lib/acsr/semantics.mli: Defs Proc Step
