lib/acsr/expr.mli: Fmt Map
