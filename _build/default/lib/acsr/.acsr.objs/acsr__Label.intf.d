lib/acsr/label.mli: Fmt Map Set
