lib/acsr/action.ml: Expr Fmt List Resource Stdlib
