lib/acsr/event.mli: Expr Fmt Label
