lib/acsr/guard.ml: Expr Fmt
