lib/acsr/step.mli: Action Event Fmt Label
