lib/acsr/action.mli: Expr Fmt Resource
