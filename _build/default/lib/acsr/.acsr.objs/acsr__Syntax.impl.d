lib/acsr/syntax.ml: Action Array Defs Event Expr Fmt Guard Label List Proc Resource String
