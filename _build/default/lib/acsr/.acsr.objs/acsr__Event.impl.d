lib/acsr/event.ml: Expr Fmt Label
