lib/acsr/semantics.ml: Action Defs Event Expr Fmt Guard Label List Option Proc Resource Stdlib Step
