lib/acsr/label.ml: Fmt List Map Set String
