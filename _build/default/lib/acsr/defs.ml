(* Environments of (parameterized) process definitions.

   A definition [name(x1,...,xn) = body] gives meaning to [Proc.Call]
   nodes.  Instantiating a call substitutes evaluated arguments for the
   formals, producing a closed body; syntactic checks at registration time
   guarantee that every parameter used in a body is bound by its formals,
   which is what keeps instantiated models closed. *)

module String_map = Map.Make (String)

type def = { name : string; formals : string list; body : Proc.t }

type t = def String_map.t

exception Undefined of string
exception Arity_mismatch of string * int * int
exception Unbound_in_body of string * string
exception Duplicate of string

let empty = String_map.empty

let check_def d =
  let module SS = Set.Make (String) in
  let formals = SS.of_list d.formals in
  if SS.cardinal formals <> List.length d.formals then
    invalid_arg
      (Fmt.str "Defs: duplicate formal parameter in %s" d.name);
  match List.find_opt (fun v -> not (SS.mem v formals)) (Proc.free_vars d.body)
  with
  | Some v -> raise (Unbound_in_body (d.name, v))
  | None -> ()

let add env ~name ~formals body =
  if String_map.mem name env then raise (Duplicate name);
  let d = { name; formals; body } in
  check_def d;
  String_map.add name d env

let find env name =
  match String_map.find_opt name env with
  | Some d -> d
  | None -> raise (Undefined name)

let mem env name = String_map.mem name env
let names env = List.map fst (String_map.bindings env)
let fold f env acc = String_map.fold (fun _ d acc -> f d acc) env acc

let of_list defs =
  List.fold_left
    (fun env (name, formals, body) -> add env ~name ~formals body)
    empty defs

let merge a b =
  String_map.union (fun name _ _ -> raise (Duplicate name)) a b

(* Instantiate a call: bind formals to evaluated argument values and
   substitute through the body. *)
let instantiate env name (args : int list) =
  let d = find env name in
  let n_formals = List.length d.formals and n_args = List.length args in
  if n_formals <> n_args then
    raise (Arity_mismatch (name, n_formals, n_args));
  let bindings =
    List.fold_left2
      (fun acc formal v -> Expr.Env.add formal v acc)
      Expr.Env.empty d.formals args
  in
  Proc.subst bindings d.body

let pp_def ppf d =
  match d.formals with
  | [] -> Fmt.pf ppf "@[<hov 2>%s =@ %a@]" d.name Proc.pp d.body
  | fs ->
      Fmt.pf ppf "@[<hov 2>%s(%a) =@ %a@]" d.name
        Fmt.(list ~sep:comma string)
        fs Proc.pp d.body

let pp ppf env =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:cut pp_def)
    (List.map snd (String_map.bindings env))
