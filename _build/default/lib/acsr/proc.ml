(* Syntax of ACSR process terms.

   The constructors follow the operators used in the paper (Section 3):
   deadlocked NIL, timed-action prefix, event prefix, choice, parallel
   composition, event restriction, resource closure, temporal scopes with
   exception / timeout / interrupt exits, guarded branches and invocation of
   (parameterized) process definitions. *)

type t =
  | Nil
  | Act of Action.t * t
  | Ev of Event.t * t
  | Choice of t * t
  | Par of t * t
  | Scope of scope
  | Restrict of Label.Set.t * t
  | Close of Resource.Set.t * t
  | If of Guard.t * t
  | Call of string * Expr.t list

and scope = {
  body : t;  (** the process executing inside the scope *)
  bound : Expr.t option;
      (** remaining quanta before the timeout exit; [None] = no timeout *)
  exc : (Label.t * t) option;
      (** exception: when [body] emits this output label, control transfers
          to the handler (a voluntary exit) *)
  timeout : t;  (** entered when [bound] reaches zero *)
  interrupt : t option;
      (** a handler whose initial steps are always enabled; taking one
          abandons the scope (an involuntary exit) *)
}

(* {1 Smart constructors} *)

let nil = Nil
let act a p = Act (a, p)
let event e p = Ev (e, p)
let send ?prio l p = Ev (Event.send ?prio l, p)
let receive ?prio l p = Ev (Event.receive ?prio l, p)

let choice p q =
  match (p, q) with Nil, r | r, Nil -> r | p, q -> Choice (p, q)

let choice_list = function
  | [] -> Nil
  | p :: ps -> List.fold_left choice p ps

let par p q = Par (p, q)

let par_list = function
  | [] -> Nil
  | p :: ps -> List.fold_left par p ps

let restrict labels p =
  if Label.Set.is_empty labels then p
  else Restrict (Label.canonical_set labels, p)

let close resources p =
  if Resource.Set.is_empty resources then p
  else Close (Resource.canonical_set resources, p)

let if_ g p =
  match g with Guard.True -> p | Guard.False -> Nil | g -> If (g, p)

let call name args = Call (name, args)

let scope ?bound ?exc ?interrupt ?(timeout = Nil) body =
  Scope { body; bound; exc; timeout; interrupt }

(* {1 Substitution of process parameters}

   Parameters are bound only by process definitions, never inside terms, so
   substitution is a straightforward traversal. *)

let rec subst env p =
  match p with
  | Nil -> Nil
  | Act (a, k) -> Act (Action.subst env a, subst env k)
  | Ev (e, k) -> Ev (Event.subst env e, subst env k)
  | Choice (a, b) -> Choice (subst env a, subst env b)
  | Par (a, b) -> Par (subst env a, subst env b)
  | Scope s ->
      Scope
        {
          body = subst env s.body;
          bound = Option.map (Expr.subst env) s.bound;
          exc = Option.map (fun (l, h) -> (l, subst env h)) s.exc;
          timeout = subst env s.timeout;
          interrupt = Option.map (subst env) s.interrupt;
        }
  | Restrict (ls, k) -> Restrict (ls, subst env k)
  | Close (rs, k) -> Close (rs, subst env k)
  | If (g, k) -> (
      match Guard.subst env g with
      | Guard.False -> Nil
      | g' -> If (g', subst env k))
  | Call (n, args) -> Call (n, List.map (Expr.subst env) args)

let rec free_vars p =
  match p with
  | Nil -> []
  | Act (a, k) -> Action.free_vars a @ free_vars k
  | Ev (e, k) -> Expr.free_vars (Event.priority e) @ free_vars k
  | Choice (a, b) | Par (a, b) -> free_vars a @ free_vars b
  | Scope s ->
      (match s.bound with Some e -> Expr.free_vars e | None -> [])
      @ free_vars s.body
      @ (match s.exc with Some (_, h) -> free_vars h | None -> [])
      @ free_vars s.timeout
      @ (match s.interrupt with Some h -> free_vars h | None -> [])
  | Restrict (_, k) | Close (_, k) -> free_vars k
  | If (g, k) -> Guard.free_vars g @ free_vars k
  | Call (_, args) -> List.concat_map Expr.free_vars args

let is_ground p = free_vars p = []

(* {1 Structural equality and size} *)

let equal (a : t) (b : t) = a = b
let compare = Stdlib.compare
let hash (p : t) = Hashtbl.hash p

let rec size = function
  | Nil -> 1
  | Act (_, k) | Ev (_, k) -> 1 + size k
  | Choice (a, b) | Par (a, b) -> 1 + size a + size b
  | Scope s ->
      1 + size s.body
      + (match s.exc with Some (_, h) -> size h | None -> 0)
      + size s.timeout
      + (match s.interrupt with Some h -> size h | None -> 0)
  | Restrict (_, k) | Close (_, k) | If (_, k) -> 1 + size k
  | Call (_, args) -> 1 + List.length args

(* {1 Pretty-printing} *)

let rec pp ppf = function
  | Nil -> Fmt.string ppf "NIL"
  | Act (a, k) -> Fmt.pf ppf "%a:%a" Action.pp a pp_atom k
  | Ev (e, k) -> Fmt.pf ppf "%a.%a" Event.pp e pp_atom k
  | Choice (a, b) -> Fmt.pf ppf "%a + %a" pp_atom a pp_atom b
  | Par (a, b) -> Fmt.pf ppf "%a || %a" pp_atom a pp_atom b
  | Scope s -> pp_scope ppf s
  | Restrict (ls, k) -> Fmt.pf ppf "%a\\%a" pp_atom k Label.pp_set ls
  | Close (rs, k) -> Fmt.pf ppf "[%a]_%a" pp k Resource.pp_set rs
  | If (g, k) -> Fmt.pf ppf "(%a -> %a)" Guard.pp g pp_atom k
  | Call (n, []) -> Fmt.string ppf n
  | Call (n, args) ->
      Fmt.pf ppf "%s(%a)" n Fmt.(list ~sep:comma Expr.pp) args

and pp_scope ppf s =
  let pp_bound ppf = function
    | Some e -> Fmt.pf ppf "^%a" Expr.pp e
    | None -> ()
  in
  let pp_exc ppf = function
    | Some (l, h) -> Fmt.pf ppf " exc(%a -> %a)" Label.pp l pp_atom h
    | None -> ()
  in
  let pp_timeout ppf = function
    | Nil -> ()
    | h -> Fmt.pf ppf " timeout(%a)" pp_atom h
  in
  let pp_int ppf = function
    | Some h -> Fmt.pf ppf " int(%a)" pp_atom h
    | None -> ()
  in
  Fmt.pf ppf "(%a delta%a%a%a%a)" pp_atom s.body pp_bound s.bound pp_exc
    s.exc pp_timeout s.timeout pp_int s.interrupt

and pp_atom ppf p =
  match p with
  | Nil | Call _ | Scope _ | If _ | Close _ -> pp ppf p
  | Act _ | Ev _ | Choice _ | Par _ | Restrict _ -> Fmt.pf ppf "(%a)" pp p

let to_string p = Fmt.str "%a" pp p
