(* Resources are the central notion of ACSR: timed actions claim sets of
   resources, and contention between processes is resolved by priorities on
   resource accesses.  A resource is identified by its name; in translated
   AADL models resources stand for processors and buses. *)

type t = string

let make name =
  if String.length name = 0 then invalid_arg "Resource.make: empty name";
  name

let name r = r
let compare = String.compare
let equal = String.equal
let pp ppf r = Fmt.string ppf r

module Set = Set.Make (String)
module Map = Map.Make (String)

(* [Set.of_list] builds different trees for different input orders, so
   structurally comparing terms that embed sets (as [Proc.equal] does)
   needs sets built canonically: insert in sorted order. *)
let set_of_list l =
  List.fold_left (fun s x -> Set.add x s) Set.empty
    (List.sort_uniq String.compare l)

let canonical_set s = set_of_list (Set.elements s)

let pp_set ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma pp) (Set.elements s)
