(** Environments of parameterized process definitions. *)

type def = { name : string; formals : string list; body : Proc.t }

type t

exception Undefined of string
exception Arity_mismatch of string * int * int
(** definition name, expected arity, actual arity *)

exception Unbound_in_body of string * string
(** definition name, unbound parameter used by its body *)

exception Duplicate of string

val empty : t

val add : t -> name:string -> formals:string list -> Proc.t -> t
(** @raise Duplicate if [name] is already defined.
    @raise Unbound_in_body if the body uses a parameter not in [formals].
    @raise Invalid_argument on duplicate formals. *)

val find : t -> string -> def
(** @raise Undefined *)

val mem : t -> string -> bool
val names : t -> string list
val fold : (def -> 'a -> 'a) -> t -> 'a -> 'a
val of_list : (string * string list * Proc.t) list -> t

val merge : t -> t -> t
(** @raise Duplicate on name collision. *)

val instantiate : t -> string -> int list -> Proc.t
(** [instantiate env name args] is the body of [name] with formals replaced
    by [args]; the result is closed.
    @raise Undefined / Arity_mismatch accordingly. *)

val pp_def : def Fmt.t
val pp : t Fmt.t
