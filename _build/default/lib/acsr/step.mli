(** Transition labels of instantiated ACSR processes and the preemption
    relation inducing the prioritized transition relation. *)

type t =
  | Action of Action.ground
  | Event of Label.t * Event.dir * int
  | Tau of Label.t option * int

val is_timed : t -> bool
(** True for timed actions (exactly the steps that advance global time). *)

val equal : t -> t -> bool
val compare : t -> t -> int

val preempts : t -> t -> bool
(** [preempts b a]: step [b] preempts step [a] per the ACSR preemption
    relation.  Irreflexive and transitive. *)

val prioritize : (t * 'a) list -> (t * 'a) list
(** Remove the steps preempted by another enabled step, yielding the
    prioritized transition set of a state. *)

val pp : t Fmt.t
