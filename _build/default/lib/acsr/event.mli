(** Instantaneous ACSR communication events. *)

type dir = In | Out

type t = { label : Label.t; dir : dir; prio : Expr.t }

val receive : ?prio:Expr.t -> Label.t -> t
(** [receive l] is the input event [l?] (default priority 0). *)

val send : ?prio:Expr.t -> Label.t -> t
(** [send l] is the output event [l!] (default priority 0). *)

val label : t -> Label.t
val dir : t -> dir
val priority : t -> Expr.t
val subst : int Expr.Env.t -> t -> t
val is_ground : t -> bool
val pp_dir : dir Fmt.t
val pp : t Fmt.t
