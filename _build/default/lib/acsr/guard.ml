(* Boolean guards over process parameters.  Guards restrict which branches of
   a parameterized process body are enabled for a given parameter valuation;
   they are the mechanism that keeps parameterized processes finite-state
   (e.g. [e < cmax] in the Compute process of Fig. 5). *)

type t =
  | True
  | False
  | Cmp of cmp * Expr.t * Expr.t
  | And of t * t
  | Or of t * t
  | Not of t

and cmp = Eq | Ne | Lt | Le | Gt | Ge

let tt = True
let ff = False
let eq a b = Cmp (Eq, a, b)
let ne a b = Cmp (Ne, a, b)
let lt a b = Cmp (Lt, a, b)
let le a b = Cmp (Le, a, b)
let gt a b = Cmp (Gt, a, b)
let ge a b = Cmp (Ge, a, b)
let conj a b = And (a, b)
let disj a b = Or (a, b)
let neg a = Not a

let eval_cmp op x y =
  match op with
  | Eq -> x = y
  | Ne -> x <> y
  | Lt -> x < y
  | Le -> x <= y
  | Gt -> x > y
  | Ge -> x >= y

let rec eval env = function
  | True -> true
  | False -> false
  | Cmp (op, a, b) -> eval_cmp op (Expr.eval env a) (Expr.eval env b)
  | And (a, b) -> eval env a && eval env b
  | Or (a, b) -> eval env a || eval env b
  | Not a -> not (eval env a)

let rec subst env = function
  | True -> True
  | False -> False
  | Cmp (op, a, b) -> (
      let a' = Expr.subst env a and b' = Expr.subst env b in
      match (a', b') with
      | Expr.Int x, Expr.Int y -> if eval_cmp op x y then True else False
      | _ -> Cmp (op, a', b'))
  | And (a, b) -> (
      match (subst env a, subst env b) with
      | False, _ | _, False -> False
      | True, g | g, True -> g
      | a', b' -> And (a', b'))
  | Or (a, b) -> (
      match (subst env a, subst env b) with
      | True, _ | _, True -> True
      | False, g | g, False -> g
      | a', b' -> Or (a', b'))
  | Not a -> (
      match subst env a with
      | True -> False
      | False -> True
      | a' -> Not a')

let rec free_vars = function
  | True | False -> []
  | Cmp (_, a, b) -> Expr.free_vars a @ Expr.free_vars b
  | And (a, b) | Or (a, b) -> free_vars a @ free_vars b
  | Not a -> free_vars a

let is_ground g = free_vars g = []

let pp_cmp ppf op =
  Fmt.string ppf
    (match op with
    | Eq -> "=="
    | Ne -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Cmp (op, a, b) -> Fmt.pf ppf "%a %a %a" Expr.pp a pp_cmp op Expr.pp b
  | And (a, b) -> Fmt.pf ppf "(%a && %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a || %a)" pp a pp b
  | Not a -> Fmt.pf ppf "!(%a)" pp a
