(** Syntax of ACSR process terms (paper, Section 3). *)

type t =
  | Nil  (** the deadlocked process: no steps, cannot let time pass *)
  | Act of Action.t * t  (** timed-action prefix [A:P] *)
  | Ev of Event.t * t  (** event prefix [(e,p).P] *)
  | Choice of t * t  (** alternative [P + Q] *)
  | Par of t * t  (** parallel composition [P || Q] *)
  | Scope of scope  (** temporal scope with exception/timeout/interrupt *)
  | Restrict of Label.Set.t * t
      (** [P\F]: forbids unsynchronized events on labels in [F], forcing
          synchronization within [P] *)
  | Close of Resource.Set.t * t
      (** [[P]_I]: resource closure — [P]'s timed actions implicitly claim
          the unused resources of [I] at priority 0 *)
  | If of Guard.t * t  (** guarded branch [b -> P] *)
  | Call of string * Expr.t list  (** invocation of a process definition *)

and scope = {
  body : t;
  bound : Expr.t option;
  exc : (Label.t * t) option;
  timeout : t;
  interrupt : t option;
}

(** {1 Smart constructors} *)

val nil : t
val act : Action.t -> t -> t
val event : Event.t -> t -> t
val send : ?prio:Expr.t -> Label.t -> t -> t
val receive : ?prio:Expr.t -> Label.t -> t -> t

val choice : t -> t -> t
(** [choice p q]; absorbs [Nil] operands. *)

val choice_list : t list -> t
val par : t -> t -> t
val par_list : t list -> t
val restrict : Label.Set.t -> t -> t
val close : Resource.Set.t -> t -> t

val if_ : Guard.t -> t -> t
(** Simplifies trivially true/false guards. *)

val call : string -> Expr.t list -> t

val scope :
  ?bound:Expr.t ->
  ?exc:Label.t * t ->
  ?interrupt:t ->
  ?timeout:t ->
  t ->
  t
(** [scope body] wraps [body] in a temporal scope.  [timeout] defaults to
    [Nil]: reaching the bound with no handler deadlocks, which is how
    deadline violations manifest (paper, Section 5). *)

(** {1 Parameter substitution} *)

val subst : int Expr.Env.t -> t -> t
val free_vars : t -> string list
val is_ground : t -> bool

(** {1 Comparisons} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val size : t -> int
(** Number of syntax nodes, for diagnostics. *)

(** {1 Pretty-printing} *)

val pp : t Fmt.t
val to_string : t -> string
