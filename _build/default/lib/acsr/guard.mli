(** Boolean guards over process parameters. *)

type t =
  | True
  | False
  | Cmp of cmp * Expr.t * Expr.t
  | And of t * t
  | Or of t * t
  | Not of t

and cmp = Eq | Ne | Lt | Le | Gt | Ge

(** {1 Constructors} *)

val tt : t
val ff : t
val eq : Expr.t -> Expr.t -> t
val ne : Expr.t -> Expr.t -> t
val lt : Expr.t -> Expr.t -> t
val le : Expr.t -> Expr.t -> t
val gt : Expr.t -> Expr.t -> t
val ge : Expr.t -> Expr.t -> t
val conj : t -> t -> t
val disj : t -> t -> t
val neg : t -> t

(** {1 Evaluation} *)

val eval : int Expr.Env.t -> t -> bool
(** @raise Expr.Unbound_parameter if a free parameter is not in the env. *)

val subst : int Expr.Env.t -> t -> t
(** Substitute bound parameters and simplify decided subformulas. *)

val free_vars : t -> string list
val is_ground : t -> bool
val pp : t Fmt.t
