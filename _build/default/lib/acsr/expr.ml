(* Integer expressions over process parameters.

   Parameterized ACSR processes (paper, end of Section 3) carry dynamic
   parameters whose values evolve during execution; priorities of resource
   accesses may be expressions over these parameters.  This is what enables
   dynamic-priority schedulers: EDF uses the priority expression
   [d_max - (d_i - t)] where [t] is the time-since-dispatch parameter of the
   thread process (paper, Section 5). *)

type t =
  | Int of int
  | Var of string
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Min of t * t
  | Max of t * t

exception Unbound_parameter of string

module Env = Stdlib.Map.Make (String)

let rec eval env = function
  | Int n -> n
  | Var x -> (
      match Env.find_opt x env with
      | Some v -> v
      | None -> raise (Unbound_parameter x))
  | Neg e -> -eval env e
  | Add (a, b) -> eval env a + eval env b
  | Sub (a, b) -> eval env a - eval env b
  | Mul (a, b) -> eval env a * eval env b
  | Div (a, b) -> eval env a / eval env b
  | Mod (a, b) -> eval env a mod eval env b
  | Min (a, b) -> min (eval env a) (eval env b)
  | Max (a, b) -> max (eval env a) (eval env b)

let rec free_vars = function
  | Int _ -> []
  | Var x -> [ x ]
  | Neg e -> free_vars e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
  | Min (a, b) | Max (a, b) ->
      free_vars a @ free_vars b

let is_ground e = free_vars e = []

(* Substitute parameters by integer values, simplifying constant subterms so
   that repeatedly-unfolded process bodies stay small. *)
let rec subst env e =
  match e with
  | Int _ -> e
  | Var x -> ( match Env.find_opt x env with Some v -> Int v | None -> e)
  | Neg a -> ( match subst env a with Int n -> Int (-n) | a' -> Neg a')
  | Add (a, b) -> binop env (fun x y -> x + y) (fun x y -> Add (x, y)) a b
  | Sub (a, b) -> binop env (fun x y -> x - y) (fun x y -> Sub (x, y)) a b
  | Mul (a, b) -> binop env (fun x y -> x * y) (fun x y -> Mul (x, y)) a b
  | Div (a, b) ->
      (* division by a constant zero must not be folded away: leave it to
         [eval] to raise at the point of use *)
      let a' = subst env a and b' = subst env b in
      (match (a', b') with
      | Int x, Int y when y <> 0 -> Int (x / y)
      | _ -> Div (a', b'))
  | Mod (a, b) ->
      let a' = subst env a and b' = subst env b in
      (match (a', b') with
      | Int x, Int y when y <> 0 -> Int (x mod y)
      | _ -> Mod (a', b'))
  | Min (a, b) -> binop env min (fun x y -> Min (x, y)) a b
  | Max (a, b) -> binop env max (fun x y -> Max (x, y)) a b

and binop env fold rebuild a b =
  let a' = subst env a and b' = subst env b in
  match (a', b') with
  | Int x, Int y -> Int (fold x y)
  | _ -> rebuild a' b'

let rec equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Var x, Var y -> String.equal x y
  | Neg x, Neg y -> equal x y
  | Add (a1, b1), Add (a2, b2)
  | Sub (a1, b1), Sub (a2, b2)
  | Mul (a1, b1), Mul (a2, b2)
  | Div (a1, b1), Div (a2, b2)
  | Mod (a1, b1), Mod (a2, b2)
  | Min (a1, b1), Min (a2, b2)
  | Max (a1, b1), Max (a2, b2) ->
      equal a1 a2 && equal b1 b2
  | ( ( Int _ | Var _ | Neg _ | Add _ | Sub _ | Mul _ | Div _ | Mod _ | Min _
      | Max _ ),
      _ ) ->
      false

let compare = Stdlib.compare

let rec pp ppf = function
  | Int n -> Fmt.int ppf n
  | Var x -> Fmt.string ppf x
  | Neg e -> Fmt.pf ppf "-%a" pp_atom e
  | Add (a, b) -> Fmt.pf ppf "%a + %a" pp_atom a pp_atom b
  | Sub (a, b) -> Fmt.pf ppf "%a - %a" pp_atom a pp_atom b
  | Mul (a, b) -> Fmt.pf ppf "%a * %a" pp_atom a pp_atom b
  | Div (a, b) -> Fmt.pf ppf "%a / %a" pp_atom a pp_atom b
  | Mod (a, b) -> Fmt.pf ppf "%a %% %a" pp_atom a pp_atom b
  | Min (a, b) -> Fmt.pf ppf "min(%a, %a)" pp a pp b
  | Max (a, b) -> Fmt.pf ppf "max(%a, %a)" pp a pp b

and pp_atom ppf e =
  match e with
  | Int _ | Var _ | Min _ | Max _ -> pp ppf e
  | Neg _ | Add _ | Sub _ | Mul _ | Div _ | Mod _ -> Fmt.pf ppf "(%a)" pp e
