(* Instantaneous communication events.  An event step takes no time; an
   output [l!] and an input [l?] on the same label synchronize CCS-style
   into an internal step [tau@l] whose priority is the sum of the two
   participants' priorities. *)

type dir = In | Out

type t = { label : Label.t; dir : dir; prio : Expr.t }

let receive ?(prio = Expr.Int 0) label = { label; dir = In; prio }
let send ?(prio = Expr.Int 0) label = { label; dir = Out; prio }

let label e = e.label
let dir e = e.dir
let priority e = e.prio
let subst env e = { e with prio = Expr.subst env e.prio }
let is_ground e = Expr.is_ground e.prio

let pp_dir ppf = function
  | In -> Fmt.string ppf "?"
  | Out -> Fmt.string ppf "!"

let pp ppf e =
  match e.prio with
  | Expr.Int 0 -> Fmt.pf ppf "%a%a" Label.pp e.label pp_dir e.dir
  | p -> Fmt.pf ppf "(%a%a,%a)" Label.pp e.label pp_dir e.dir Expr.pp p
