(* Operational semantics of ACSR.

   [steps] computes the unprioritized transition relation of a closed
   process term; [prioritized] filters it through the preemption relation
   (Step.prioritize), yielding the prioritized transition relation on which
   schedulability analysis is performed.

   Time progress is global: in a parallel composition both operands must
   take timed actions together, with disjoint resource sets (rule Par3 in
   the paper); events interleave or synchronize CCS-style. *)

exception Not_closed of string
exception Unguarded_recursion of string

(* Bound on nested Call unfoldings within the computation of a single step
   set.  Well-formed ACSR definitions are guarded (every recursive call is
   behind an action or event prefix), so this limit is only reached by
   ill-founded definitions such as [X = X]. *)
let max_unfold_depth = 4096

let ground_env = Expr.Env.empty

let eval_expr name e =
  match Expr.eval ground_env e with
  | v -> v
  | exception Expr.Unbound_parameter x ->
      raise (Not_closed (Fmt.str "%s: unbound parameter %s" name x))

let rec steps_at depth (defs : Defs.t) (p : Proc.t) :
    (Step.t * Proc.t) list =
  match p with
  | Proc.Nil -> []
  | Proc.Act (a, k) ->
      let ground =
        List.map (fun (r, e) -> (r, eval_expr "action priority" e)) a
      in
      [ (Step.Action ground, k) ]
  | Proc.Ev (e, k) ->
      let prio = eval_expr "event priority" (Event.priority e) in
      [ (Step.Event (Event.label e, Event.dir e, prio), k) ]
  | Proc.Choice (a, b) -> steps_at depth defs a @ steps_at depth defs b
  | Proc.Par (a, b) -> par_steps depth defs a b
  | Proc.Scope s -> scope_steps depth defs s
  | Proc.Restrict (forbidden, k) ->
      let keep (step, _) =
        match step with
        | Step.Event (l, _, _) -> not (Label.Set.mem l forbidden)
        | Step.Action _ | Step.Tau _ -> true
      in
      steps_at depth defs k
      |> List.filter keep
      |> List.map (fun (s, k') -> (s, Proc.Restrict (forbidden, k')))
  | Proc.Close (owned, k) ->
      let close_step (step, k') =
        let step' =
          match step with
          | Step.Action a ->
              let used = Action.Ground.resources a in
              let extra =
                Resource.Set.diff owned used
                |> Resource.Set.elements
                |> List.map (fun r -> (r, 0))
              in
              Step.Action (Action.Ground.union a extra)
          | Step.Event _ | Step.Tau _ -> step
        in
        (step', Proc.Close (owned, k'))
      in
      List.map close_step (steps_at depth defs k)
  | Proc.If (g, k) -> (
      match Guard.eval ground_env g with
      | true -> steps_at depth defs k
      | false -> []
      | exception Expr.Unbound_parameter x ->
          raise (Not_closed (Fmt.str "guard: unbound parameter %s" x)))
  | Proc.Call (name, args) ->
      if depth > max_unfold_depth then raise (Unguarded_recursion name);
      let values = List.map (eval_expr name) args in
      steps_at (depth + 1) defs (Defs.instantiate defs name values)

and par_steps depth defs a b =
  let sa = steps_at depth defs a and sb = steps_at depth defs b in
  (* interleaved instantaneous steps *)
  let left =
    List.filter_map
      (fun (s, a') ->
        match s with
        | Step.Event _ | Step.Tau _ -> Some (s, Proc.Par (a', b))
        | Step.Action _ -> None)
      sa
  and right =
    List.filter_map
      (fun (s, b') ->
        match s with
        | Step.Event _ | Step.Tau _ -> Some (s, Proc.Par (a, b'))
        | Step.Action _ -> None)
      sb
  in
  (* synchronized timed actions with disjoint resources *)
  let timed =
    List.concat_map
      (fun (s, a') ->
        match s with
        | Step.Action aa ->
            List.filter_map
              (fun (s', b') ->
                match s' with
                | Step.Action ab when Action.Ground.disjoint aa ab ->
                    Some
                      ( Step.Action (Action.Ground.union aa ab),
                        Proc.Par (a', b') )
                | Step.Action _ | Step.Event _ | Step.Tau _ -> None)
              sb
        | Step.Event _ | Step.Tau _ -> [])
      sa
  in
  (* CCS-style synchronization of matching input/output events *)
  let sync =
    List.concat_map
      (fun (s, a') ->
        match s with
        | Step.Event (l, da, pa) ->
            List.filter_map
              (fun (s', b') ->
                match s' with
                | Step.Event (l', db, pb)
                  when Label.equal l l' && da <> db ->
                    Some (Step.Tau (Some l, pa + pb), Proc.Par (a', b'))
                | Step.Event _ | Step.Action _ | Step.Tau _ -> None)
              sb
        | Step.Action _ | Step.Tau _ -> [])
      sa
  in
  left @ right @ timed @ sync

and scope_steps depth defs (s : Proc.scope) =
  let bound = Option.map (eval_expr "scope bound") s.bound in
  match bound with
  | Some 0 ->
      (* timeout exit: the scope is left and the handler takes over *)
      steps_at depth defs s.timeout
  | _ ->
      let decrement =
        match bound with
        | Some n -> Some (Expr.Int (n - 1))
        | None -> None
      in
      let of_body (step, body') =
        match (step, s.exc) with
        | Step.Event (l, Event.Out, _), Some (l', handler)
          when Label.equal l l' ->
            (* exception exit: voluntary transfer of control *)
            [ (step, handler) ]
        | Step.Action _, _ ->
            [ (step, Proc.Scope { s with body = body'; bound = decrement }) ]
        | (Step.Event _ | Step.Tau _), _ ->
            [ (step, Proc.Scope { s with body = body' }) ]
      in
      let body_steps = List.concat_map of_body (steps_at depth defs s.body) in
      let interrupt_steps =
        match s.interrupt with
        | Some handler -> steps_at depth defs handler
        | None -> []
      in
      body_steps @ interrupt_steps

let dedup steps = List.sort_uniq Stdlib.compare steps

let steps defs p = dedup (steps_at 0 defs p)
let prioritized defs p = Step.prioritize (steps defs p)
let is_deadlocked defs p = steps defs p = []

(* A process is time-stopped when no enabled (prioritized) step advances
   time; deadlocks are a special case.  Useful as a diagnostic. *)
let is_time_stopped defs p =
  not (List.exists (fun (s, _) -> Step.is_timed s) (prioritized defs p))
