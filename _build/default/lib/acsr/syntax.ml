(* A concrete textual syntax for ACSR, in the spirit of VERSA's input
   language, with a parser and a printer that round-trip.

   Grammar (precedence from loosest to tightest):

     file     ::= { def ";" } [ "system" "=" proc ";" ]
     def      ::= NAME [ "(" params ")" ] "=" proc
     proc     ::= par
     par      ::= sum { "||" sum }
     sum      ::= prefix { "+" prefix }
     prefix   ::= action ":" prefix            -- timed-action prefix
                | event "." prefix             -- event prefix
                | "[" guard "]" "->" prefix    -- guarded process
                | postfix
     postfix  ::= primary { BACKSLASH "{" names "}" }  -- restriction
     primary  ::= "NIL" | NAME [ "(" exprs ")" ]
                | "(" proc ")"
                | "close" "(" proc "," "{" names "}" ")"
                | "scope" proc scope-clauses "end"
     scope-clauses ::= [ "bound" expr ] [ "exception" NAME "->" proc ]
                       [ "timeout" "->" proc ] [ "interrupt" "->" proc ]
     action   ::= "{" [ "(" NAME "," expr ")" { "," "(" NAME "," expr ")" } ] "}"
     event    ::= NAME "!" | NAME "?" | "(" NAME ("!"|"?") "," expr ")"
     guard    ::= conj { "or" conj }
     conj     ::= atom-guard { "&&" atom-guard }
     atom-guard ::= "true" | "false" | "not" atom-guard
                  | expr ("=="|"!="|"<"|"<="|">"|">=") expr
                  | "(" guard ")"
     expr     ::= term { ("+"|"-") term }
     term     ::= factor { ("*"|"/"|"%") factor }
     factor   ::= INT | NAME | "-" factor | "(" expr ")"
                | ("min"|"max") "(" expr "," expr ")"

   Comments run from "--" to end of line.  Process names and parameters
   share the identifier syntax; resource and label names likewise. *)

type token =
  | TINT of int
  | TNAME of string
  | TLPAR
  | TRPAR
  | TLBRACE
  | TRBRACE
  | TLBRACK
  | TRBRACK
  | TCOMMA
  | TSEMI
  | TCOLON
  | TDOT
  | TPLUS
  | TMINUS
  | TSTAR
  | TSLASH
  | TPERCENT
  | TBANG
  | TQUEST
  | TPAR  (** || *)
  | TBACKSLASH
  | TARROW
  | TEQ  (** = *)
  | TEQEQ
  | TNEQ
  | TLT
  | TLE
  | TGT
  | TGE
  | TANDAND
  | TEOF

exception Parse_error of string * int
(** message, line *)

let pp_token ppf = function
  | TINT n -> Fmt.pf ppf "integer %d" n
  | TNAME s -> Fmt.pf ppf "name %S" s
  | TLPAR -> Fmt.string ppf "'('"
  | TRPAR -> Fmt.string ppf "')'"
  | TLBRACE -> Fmt.string ppf "'{'"
  | TRBRACE -> Fmt.string ppf "'}'"
  | TLBRACK -> Fmt.string ppf "'['"
  | TRBRACK -> Fmt.string ppf "']'"
  | TCOMMA -> Fmt.string ppf "','"
  | TSEMI -> Fmt.string ppf "';'"
  | TCOLON -> Fmt.string ppf "':'"
  | TDOT -> Fmt.string ppf "'.'"
  | TPLUS -> Fmt.string ppf "'+'"
  | TMINUS -> Fmt.string ppf "'-'"
  | TSTAR -> Fmt.string ppf "'*'"
  | TSLASH -> Fmt.string ppf "'/'"
  | TPERCENT -> Fmt.string ppf "'%'"
  | TBANG -> Fmt.string ppf "'!'"
  | TQUEST -> Fmt.string ppf "'?'"
  | TPAR -> Fmt.string ppf "'||'"
  | TBACKSLASH -> Fmt.string ppf "'\\'"
  | TARROW -> Fmt.string ppf "'->'"
  | TEQ -> Fmt.string ppf "'='"
  | TEQEQ -> Fmt.string ppf "'=='"
  | TNEQ -> Fmt.string ppf "'!='"
  | TLT -> Fmt.string ppf "'<'"
  | TLE -> Fmt.string ppf "'<='"
  | TGT -> Fmt.string ppf "'>'"
  | TGE -> Fmt.string ppf "'>='"
  | TANDAND -> Fmt.string ppf "'&&'"
  | TEOF -> Fmt.string ppf "end of input"

(* {1 Lexer} *)

let tokenize input =
  let n = String.length input in
  let line = ref 1 in
  let toks = ref [] in
  let emit t = toks := (t, !line) :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some input.[!i + k] else None in
  let is_digit c = c >= '0' && c <= '9' in
  let is_alpha c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  while !i < n do
    let c = input.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '-' && peek 1 = Some '-' then begin
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      emit (TINT (int_of_string (String.sub input start (!i - start))))
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && (is_alpha input.[!i] || is_digit input.[!i]) do
        incr i
      done;
      emit (TNAME (String.sub input start (!i - start)))
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      match two with
      | "||" ->
          emit TPAR;
          i := !i + 2
      | "->" ->
          emit TARROW;
          i := !i + 2
      | "==" ->
          emit TEQEQ;
          i := !i + 2
      | "!=" ->
          emit TNEQ;
          i := !i + 2
      | "<=" ->
          emit TLE;
          i := !i + 2
      | ">=" ->
          emit TGE;
          i := !i + 2
      | "&&" ->
          emit TANDAND;
          i := !i + 2
      | _ -> (
          (match c with
          | '(' -> emit TLPAR
          | ')' -> emit TRPAR
          | '{' -> emit TLBRACE
          | '}' -> emit TRBRACE
          | '[' -> emit TLBRACK
          | ']' -> emit TRBRACK
          | ',' -> emit TCOMMA
          | ';' -> emit TSEMI
          | ':' -> emit TCOLON
          | '.' -> emit TDOT
          | '+' -> emit TPLUS
          | '-' -> emit TMINUS
          | '*' -> emit TSTAR
          | '/' -> emit TSLASH
          | '%' -> emit TPERCENT
          | '!' -> emit TBANG
          | '?' -> emit TQUEST
          | '\\' -> emit TBACKSLASH
          | '=' -> emit TEQ
          | '<' -> emit TLT
          | '>' -> emit TGT
          | c ->
              raise
                (Parse_error (Fmt.str "unexpected character %C" c, !line)));
          incr i)
    end
  done;
  emit TEOF;
  List.rev !toks

(* {1 Parser} *)

type state = { toks : (token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let fail st msg = raise (Parse_error (msg, line st))

let expect st tok what =
  if peek st = tok then advance st
  else fail st (Fmt.str "expected %s, found %a" what pp_token (peek st))

let name st =
  match peek st with
  | TNAME s ->
      advance st;
      s
  | t -> fail st (Fmt.str "expected a name, found %a" pp_token t)

let is_name st kw = match peek st with TNAME s -> s = kw | _ -> false

let accept_name st kw =
  if is_name st kw then begin
    advance st;
    true
  end
  else false

(* expressions *)
let rec parse_expr st =
  let lhs = parse_term st in
  let rec go lhs =
    match peek st with
    | TPLUS ->
        advance st;
        go (Expr.Add (lhs, parse_term st))
    | TMINUS ->
        advance st;
        go (Expr.Sub (lhs, parse_term st))
    | _ -> lhs
  in
  go lhs

and parse_term st =
  let lhs = parse_factor st in
  let rec go lhs =
    match peek st with
    | TSTAR ->
        advance st;
        go (Expr.Mul (lhs, parse_factor st))
    | TSLASH ->
        advance st;
        go (Expr.Div (lhs, parse_factor st))
    | TPERCENT ->
        advance st;
        go (Expr.Mod (lhs, parse_factor st))
    | _ -> lhs
  in
  go lhs

and parse_factor st =
  match peek st with
  | TINT v ->
      advance st;
      Expr.Int v
  | TMINUS -> (
      advance st;
      (* fold a negative literal; '-' before anything else is negation *)
      match peek st with
      | TINT v ->
          advance st;
          Expr.Int (-v)
      | _ -> Expr.Neg (parse_factor st))
  | TLPAR ->
      advance st;
      let e = parse_expr st in
      expect st TRPAR "')'";
      e
  | TNAME ("min" | "max") ->
      let f = name st in
      expect st TLPAR "'(' after min/max";
      let a = parse_expr st in
      expect st TCOMMA "','";
      let b = parse_expr st in
      expect st TRPAR "')'";
      if f = "min" then Expr.Min (a, b) else Expr.Max (a, b)
  | TNAME _ -> Expr.Var (name st)
  | t -> fail st (Fmt.str "expected an expression, found %a" pp_token t)

(* guards *)
let parse_cmp st =
  match peek st with
  | TEQEQ ->
      advance st;
      Guard.Eq
  | TNEQ ->
      advance st;
      Guard.Ne
  | TLT ->
      advance st;
      Guard.Lt
  | TLE ->
      advance st;
      Guard.Le
  | TGT ->
      advance st;
      Guard.Gt
  | TGE ->
      advance st;
      Guard.Ge
  | t -> fail st (Fmt.str "expected a comparison, found %a" pp_token t)

let rec parse_guard st =
  let lhs = parse_conj st in
  if accept_name st "or" then Guard.Or (lhs, parse_guard st) else lhs

and parse_conj st =
  let lhs = parse_guard_atom st in
  if peek st = TANDAND then begin
    advance st;
    Guard.And (lhs, parse_conj st)
  end
  else lhs

and parse_guard_atom st =
  if accept_name st "true" then Guard.True
  else if accept_name st "false" then Guard.False
  else if accept_name st "not" then Guard.Not (parse_guard_atom st)
  else if peek st = TLPAR then begin
    (* ambiguous: '(' may open a parenthesized guard or an expression;
       resolve by trying the guard first, falling back to comparison *)
    let save = st.pos in
    let comparison () =
      st.pos <- save;
      let a = parse_expr st in
      let op = parse_cmp st in
      let b = parse_expr st in
      Guard.Cmp (op, a, b)
    in
    advance st;
    match parse_guard st with
    | g ->
        if peek st = TRPAR && not (is_cmp_follow st) then begin
          advance st;
          g
        end
        else comparison ()
    | exception Parse_error _ -> comparison ()
  end
  else
    let a = parse_expr st in
    let op = parse_cmp st in
    let b = parse_expr st in
    Guard.Cmp (op, a, b)

and is_cmp_follow st =
  (* after a closing paren, a comparison operator means the paren closed
     an expression, not a guard *)
  match st.toks.(st.pos + 1) with
  | (TEQEQ | TNEQ | TLT | TLE | TGT | TGE), _ -> true
  | _ -> false

(* actions: { } or { (r,p), ... } *)
let parse_action st =
  expect st TLBRACE "'{'";
  if peek st = TRBRACE then begin
    advance st;
    Action.idle
  end
  else begin
    let rec accesses acc =
      expect st TLPAR "'(' opening a resource access";
      let r = name st in
      expect st TCOMMA "','";
      let p = parse_expr st in
      expect st TRPAR "')'";
      let acc = (Resource.make r, p) :: acc in
      if peek st = TCOMMA then begin
        advance st;
        accesses acc
      end
      else List.rev acc
    in
    let acc = accesses [] in
    expect st TRBRACE "'}'";
    Action.of_list acc
  end

let parse_name_set st =
  expect st TLBRACE "'{'";
  let rec go acc =
    let l = name st in
    if peek st = TCOMMA then begin
      advance st;
      go (l :: acc)
    end
    else List.rev (l :: acc)
  in
  let names = if peek st = TRBRACE then [] else go [] in
  expect st TRBRACE "'}'";
  names

(* processes *)
let rec parse_proc st = parse_par st

and parse_par st =
  let lhs = parse_sum st in
  if peek st = TPAR then begin
    advance st;
    Proc.Par (lhs, parse_par st)
  end
  else lhs

and parse_sum st =
  let lhs = parse_prefix st in
  if peek st = TPLUS then begin
    advance st;
    Proc.Choice (lhs, parse_sum st)
  end
  else lhs

and parse_prefix st =
  match peek st with
  | TLBRACE ->
      let a = parse_action st in
      expect st TCOLON "':' after a timed action";
      Proc.Act (a, parse_prefix st)
  | TLBRACK ->
      advance st;
      let g = parse_guard st in
      expect st TRBRACK "']' closing a guard";
      expect st TARROW "'->' after a guard";
      Proc.If (g, parse_prefix st)
  | TLPAR when is_prio_event st -> (
      (* '(' NAME ('!'|'?') may also open a parenthesized process whose
         first step is an event, e.g. "(a! . P) || Q": backtrack *)
      let save = st.pos in
      try parse_event_prefix st
      with Parse_error _ ->
        st.pos <- save;
        parse_postfix st)
  | TNAME _ when is_bare_event st -> parse_event_prefix st
  | _ -> parse_postfix st

(* lookahead: NAME '!' or NAME '?' begins an event prefix *)
and is_bare_event st =
  match (st.toks.(st.pos), st.toks.(st.pos + 1)) with
  | (TNAME _, _), ((TBANG | TQUEST), _) -> true
  | _ -> false

(* lookahead: '(' NAME ('!'|'?') ',' begins a prioritized event *)
and is_prio_event st =
  Array.length st.toks > st.pos + 2
  &&
  match (st.toks.(st.pos + 1), st.toks.(st.pos + 2)) with
  | (TNAME _, _), ((TBANG | TQUEST), _) -> true
  | _ -> false

and parse_event_prefix st =
  let ev =
    if peek st = TLPAR then begin
      advance st;
      let l = name st in
      let dir =
        match peek st with
        | TBANG ->
            advance st;
            Event.Out
        | TQUEST ->
            advance st;
            Event.In
        | t -> fail st (Fmt.str "expected '!' or '?', found %a" pp_token t)
      in
      expect st TCOMMA "',' before the event priority";
      let p = parse_expr st in
      expect st TRPAR "')'";
      { Event.label = Label.make l; dir; prio = p }
    end
    else begin
      let l = name st in
      let dir =
        match peek st with
        | TBANG ->
            advance st;
            Event.Out
        | TQUEST ->
            advance st;
            Event.In
        | t -> fail st (Fmt.str "expected '!' or '?', found %a" pp_token t)
      in
      { Event.label = Label.make l; dir; prio = Expr.Int 0 }
    end
  in
  expect st TDOT "'.' after an event";
  Proc.Ev (ev, parse_prefix st)

and parse_postfix st =
  let p = parse_primary st in
  let rec go p =
    if peek st = TBACKSLASH then begin
      advance st;
      let names = parse_name_set st in
      go (Proc.Restrict (Label.set_of_list (List.map Label.make names), p))
    end
    else p
  in
  go p

and parse_primary st =
  match peek st with
  | TNAME "NIL" ->
      advance st;
      Proc.Nil
  | TNAME "close" ->
      advance st;
      expect st TLPAR "'(' after close";
      let p = parse_proc st in
      expect st TCOMMA "','";
      let names = parse_name_set st in
      expect st TRPAR "')'";
      Proc.Close (Resource.set_of_list (List.map Resource.make names), p)
  | TNAME "scope" ->
      advance st;
      let body = parse_proc st in
      let bound =
        if accept_name st "bound" then Some (parse_expr st) else None
      in
      let exc =
        if accept_name st "exception" then begin
          let l = name st in
          expect st TARROW "'->' after the exception label";
          Some (Label.make l, parse_proc st)
        end
        else None
      in
      let timeout =
        if accept_name st "timeout" then begin
          expect st TARROW "'->' after timeout";
          parse_proc st
        end
        else Proc.Nil
      in
      let interrupt =
        if accept_name st "interrupt" then begin
          expect st TARROW "'->' after interrupt";
          Some (parse_proc st)
        end
        else None
      in
      expect st (TNAME "end") "'end' closing a scope";
      Proc.Scope { Proc.body; bound; exc; timeout; interrupt }
  | TNAME _ ->
      let n = name st in
      if peek st = TLPAR then begin
        advance st;
        let rec args acc =
          let e = parse_expr st in
          if peek st = TCOMMA then begin
            advance st;
            args (e :: acc)
          end
          else List.rev (e :: acc)
        in
        let args = if peek st = TRPAR then [] else args [] in
        expect st TRPAR "')'";
        Proc.Call (n, args)
      end
      else Proc.Call (n, [])
  | TLPAR ->
      advance st;
      let p = parse_proc st in
      expect st TRPAR "')'";
      p
  | t -> fail st (Fmt.str "expected a process, found %a" pp_token t)

(* files *)
let parse_defs_tokens st =
  let defs = ref Defs.empty in
  let system = ref None in
  let rec go () =
    match peek st with
    | TEOF -> ()
    | TNAME "system" when fst st.toks.(st.pos + 1) = TEQ ->
        advance st;
        expect st TEQ "'='";
        system := Some (parse_proc st);
        expect st TSEMI "';'";
        go ()
    | TNAME _ ->
        let n = name st in
        let formals =
          if peek st = TLPAR then begin
            advance st;
            let rec params acc =
              let p = name st in
              if peek st = TCOMMA then begin
                advance st;
                params (p :: acc)
              end
              else List.rev (p :: acc)
            in
            let ps = if peek st = TRPAR then [] else params [] in
            expect st TRPAR "')'";
            ps
          end
          else []
        in
        expect st TEQ "'=' in a definition";
        let body = parse_proc st in
        expect st TSEMI "';' ending a definition";
        (try defs := Defs.add !defs ~name:n ~formals body with
        | Defs.Duplicate d -> fail st (Fmt.str "duplicate definition of %s" d)
        | Defs.Unbound_in_body (d, v) ->
            fail st
              (Fmt.str "definition %s uses parameter %s, which is not among \
                        its formals"
                 d v)
        | Invalid_argument msg -> fail st msg);
        go ()
    | t -> fail st (Fmt.str "expected a definition, found %a" pp_token t)
  in
  go ();
  (!defs, !system)

let parse_string input =
  let toks = Array.of_list (tokenize input) in
  parse_defs_tokens { toks; pos = 0 }

let parse_proc_string input =
  let toks = Array.of_list (tokenize input) in
  let st = { toks; pos = 0 } in
  let p = parse_proc st in
  expect st TEOF "end of input";
  p

(* {1 Printer}

   Emits the grammar above; [parse_proc_string (print p)] is structurally
   equal to [p]. *)

let rec print_expr ppf = function
  | Expr.Add (a, b) -> Fmt.pf ppf "%a + %a" print_expr a print_expr_term b
  | Expr.Sub (a, b) -> Fmt.pf ppf "%a - %a" print_expr a print_expr_term b
  | e -> print_expr_term ppf e

and print_expr_term ppf = function
  | Expr.Mul (a, b) ->
      Fmt.pf ppf "%a * %a" print_expr_term a print_expr_factor b
  | Expr.Div (a, b) ->
      Fmt.pf ppf "%a / %a" print_expr_term a print_expr_factor b
  | Expr.Mod (a, b) ->
      Fmt.pf ppf "%a %% %a" print_expr_term a print_expr_factor b
  | e -> print_expr_factor ppf e

and print_expr_factor ppf = function
  | Expr.Int n when n >= 0 -> Fmt.int ppf n
  | Expr.Int n -> Fmt.pf ppf "(-%d)" (-n)
  | Expr.Var x -> Fmt.string ppf x
  | Expr.Neg e -> Fmt.pf ppf "-(%a)" print_expr e
  | Expr.Min (a, b) -> Fmt.pf ppf "min(%a, %a)" print_expr a print_expr b
  | Expr.Max (a, b) -> Fmt.pf ppf "max(%a, %a)" print_expr a print_expr b
  | (Expr.Add _ | Expr.Sub _ | Expr.Mul _ | Expr.Div _ | Expr.Mod _) as e ->
      Fmt.pf ppf "(%a)" print_expr e

let print_cmp ppf op =
  Fmt.string ppf
    (match op with
    | Guard.Eq -> "=="
    | Guard.Ne -> "!="
    | Guard.Lt -> "<"
    | Guard.Le -> "<="
    | Guard.Gt -> ">"
    | Guard.Ge -> ">=")

let rec print_guard ppf = function
  | Guard.Or (a, b) -> Fmt.pf ppf "%a or %a" print_conj a print_guard b
  | g -> print_conj ppf g

and print_conj ppf = function
  | Guard.And (a, b) -> Fmt.pf ppf "%a && %a" print_guard_atom a print_conj b
  | g -> print_guard_atom ppf g

and print_guard_atom ppf = function
  | Guard.True -> Fmt.string ppf "true"
  | Guard.False -> Fmt.string ppf "false"
  | Guard.Not g -> Fmt.pf ppf "not %a" print_guard_atom g
  | Guard.Cmp (op, a, b) ->
      Fmt.pf ppf "%a %a %a" print_expr a print_cmp op print_expr b
  | (Guard.And _ | Guard.Or _) as g -> Fmt.pf ppf "(%a)" print_guard g

let print_action ppf a =
  let access ppf (r, p) =
    Fmt.pf ppf "(%a, %a)" Resource.pp r print_expr p
  in
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(fun ppf () -> Fmt.string ppf ", ") access)
    (Action.accesses a)

let print_event ppf (e : Event.t) =
  let dir = match e.Event.dir with Event.In -> "?" | Event.Out -> "!" in
  match e.Event.prio with
  | Expr.Int 0 -> Fmt.pf ppf "%a%s" Label.pp e.Event.label dir
  | p -> Fmt.pf ppf "(%a%s, %a)" Label.pp e.Event.label dir print_expr p

(* precedence levels: 0 = par, 1 = sum, 2 = prefix, 3 = postfix/primary *)
let rec print_proc_prec level ppf p =
  let prec =
    match p with
    | Proc.Par _ -> 0
    | Proc.Choice _ -> 1
    | Proc.Act _ | Proc.Ev _ | Proc.If _ -> 2
    | Proc.Restrict _ -> 3
    | Proc.Nil | Proc.Call _ | Proc.Close _ | Proc.Scope _ -> 4
  in
  if prec < level then Fmt.pf ppf "(%a)" (print_proc_prec 0) p
  else
    match p with
    | Proc.Nil -> Fmt.string ppf "NIL"
    | Proc.Par (a, b) ->
        Fmt.pf ppf "%a || %a" (print_proc_prec 1) a (print_proc_prec 0) b
    | Proc.Choice (a, b) ->
        Fmt.pf ppf "%a + %a" (print_proc_prec 2) a (print_proc_prec 1) b
    | Proc.Act (a, k) ->
        Fmt.pf ppf "%a : %a" print_action a (print_proc_prec 2) k
    | Proc.Ev (e, k) ->
        Fmt.pf ppf "%a . %a" print_event e (print_proc_prec 2) k
    | Proc.If (g, k) ->
        Fmt.pf ppf "[%a] -> %a" print_guard g (print_proc_prec 2) k
    | Proc.Restrict (labels, k) ->
        Fmt.pf ppf "%a \\ {%a}" (print_proc_prec 3) k
          Fmt.(list ~sep:(fun ppf () -> Fmt.string ppf ", ") Label.pp)
          (Label.Set.elements labels)
    | Proc.Close (resources, k) ->
        Fmt.pf ppf "close(%a, {%a})" (print_proc_prec 0) k
          Fmt.(list ~sep:(fun ppf () -> Fmt.string ppf ", ") Resource.pp)
          (Resource.Set.elements resources)
    | Proc.Call (n, []) -> Fmt.string ppf n
    | Proc.Call (n, args) ->
        Fmt.pf ppf "%s(%a)" n
          Fmt.(list ~sep:(fun ppf () -> Fmt.string ppf ", ") print_expr)
          args
    | Proc.Scope s ->
        Fmt.pf ppf "scope %a%a%a%a%a end" (print_proc_prec 0) s.Proc.body
          Fmt.(option (fun ppf e -> Fmt.pf ppf " bound %a" print_expr e))
          s.Proc.bound
          Fmt.(
            option (fun ppf (l, h) ->
                Fmt.pf ppf " exception %a -> %a" Label.pp l
                  (print_proc_prec 0) h))
          s.Proc.exc
          (fun ppf t ->
            match t with
            | Proc.Nil -> ()
            | t -> Fmt.pf ppf " timeout -> %a" (print_proc_prec 0) t)
          s.Proc.timeout
          Fmt.(
            option (fun ppf h ->
                Fmt.pf ppf " interrupt -> %a" (print_proc_prec 0) h))
          s.Proc.interrupt

let print_proc ppf p = print_proc_prec 0 ppf p
let proc_to_string p = Fmt.str "%a" print_proc p

let print_def ppf (d : Defs.def) =
  match d.Defs.formals with
  | [] -> Fmt.pf ppf "@[<hov 2>%s =@ %a;@]" d.Defs.name print_proc d.Defs.body
  | fs ->
      Fmt.pf ppf "@[<hov 2>%s(%a) =@ %a;@]" d.Defs.name
        Fmt.(list ~sep:(fun ppf () -> Fmt.string ppf ", ") string)
        fs print_proc d.Defs.body

let print_defs ?system ppf defs =
  let ds = Defs.fold (fun d acc -> d :: acc) defs [] in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut print_def) (List.rev ds);
  match system with
  | Some p -> Fmt.pf ppf "@.@[<hov 2>system =@ %a;@]" print_proc p
  | None -> ()

let to_string ?system defs = Fmt.str "%a" (print_defs ?system) defs
