(* Event labels for instantaneous ACSR communication steps.  A label names a
   channel; an output [l!] synchronizes with an input [l?] on the same label,
   producing an internal step tagged [tau@l]. *)

type t = string

let make name =
  if String.length name = 0 then invalid_arg "Label.make: empty name";
  name

let name l = l
let compare = String.compare
let equal = String.equal
let pp ppf l = Fmt.string ppf l

module Set = Set.Make (String)
module Map = Map.Make (String)

(* [Set.of_list] builds different trees for different input orders, so
   structurally comparing terms that embed sets (as [Proc.equal] does)
   needs sets built canonically: insert in sorted order. *)
let set_of_list l =
  List.fold_left (fun s x -> Set.add x s) Set.empty
    (List.sort_uniq String.compare l)

let canonical_set s = set_of_list (Set.elements s)

let pp_set ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma pp) (Set.elements s)
