(** Labels naming ACSR event channels. *)

type t

val make : string -> t
(** [make name] creates a label named [name].
    @raise Invalid_argument if [name] is empty. *)

val name : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : t list -> Set.t
(** Canonical set construction: two calls with the same element set yield
    structurally equal values, regardless of input order.  Use this (or
    {!canonical_set}) for sets embedded in process terms, which are
    compared structurally. *)

val canonical_set : Set.t -> Set.t

val pp_set : Set.t Fmt.t
