(* Timed actions.

   A timed action is a finite set of resource accesses {(r1,p1),...,(rn,pn)}:
   executing it takes exactly one time quantum and requires exclusive access
   to every listed resource, with priority [pi] on resource [ri] (paper,
   Section 3).  The empty action is the idling step.  In process syntax the
   priorities are expressions; [ground] evaluates them once all process
   parameters have been substituted. *)

type t = (Resource.t * Expr.t) list
(* invariant: sorted by resource, no duplicate resources *)

type ground = (Resource.t * int) list
(* same invariant, evaluated priorities *)

let idle = []

let of_list accesses =
  let sorted =
    List.sort_uniq
      (fun (r1, _) (r2, _) -> Resource.compare r1 r2)
      accesses
  in
  if List.length sorted <> List.length accesses then
    invalid_arg "Action.of_list: duplicate resource in timed action";
  sorted

let singleton r p = [ (r, p) ]
let accesses a = a
let resources a = Resource.Set.of_list (List.map fst a)
let is_idle a = a = []

let union a b =
  let clash =
    List.exists (fun (r, _) -> List.mem_assoc r b) a
  in
  if clash then invalid_arg "Action.union: overlapping resources";
  List.merge (fun (r1, _) (r2, _) -> Resource.compare r1 r2) a b

let subst env a = List.map (fun (r, p) -> (r, Expr.subst env p)) a

let ground env a : ground =
  List.map (fun (r, p) -> (r, Expr.eval env p)) a

let free_vars a = List.concat_map (fun (_, p) -> Expr.free_vars p) a
let is_ground a = free_vars a = []

let pp_access pp_prio ppf (r, p) =
  Fmt.pf ppf "(%a,%a)" Resource.pp r pp_prio p

(* a literal ", " separator: actions must print on one line *)
let sep_comma ppf () = Fmt.string ppf ", "

let pp ppf a =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:sep_comma (pp_access Expr.pp)) a

let pp_ground ppf (a : ground) =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:sep_comma (pp_access Fmt.int)) a

(* Ground-action operations used by the semantics and preemption relation. *)
module Ground = struct
  type t = ground

  let idle : t = []
  let is_idle (a : t) = a = []
  let resources (a : t) = Resource.Set.of_list (List.map fst a)

  let priority_of (a : t) r =
    match List.assoc_opt r a with Some p -> p | None -> 0

  let disjoint (a : t) (b : t) =
    not (List.exists (fun (r, _) -> List.mem_assoc r b) a)

  let union (a : t) (b : t) : t =
    if not (disjoint a b) then
      invalid_arg "Action.Ground.union: overlapping resources";
    List.merge (fun (r1, _) (r2, _) -> Resource.compare r1 r2) a b

  let compare = Stdlib.compare
  let equal (a : t) (b : t) = a = b

  (* The ACSR preemption relation on timed actions, exactly as stated in the
     paper (Section 3): [preempts b a] holds (written a < b) when every
     resource used in [a] is also used in [b] with greater or equal
     priority, and at least one resource of [b] has a strictly greater
     priority than in [a] (absent resources count as priority 0).
     Consequently any action using a resource at non-zero priority preempts
     the idling action. *)
  let preempts (b : t) (a : t) =
    Resource.Set.subset (resources a) (resources b)
    && List.for_all (fun (r, pa) -> priority_of b r >= pa) a
    && List.exists (fun (r, pb) -> pb > priority_of a r) b

  let pp = pp_ground
end
