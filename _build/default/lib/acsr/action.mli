(** Timed actions: sets of prioritized resource accesses consuming one time
    quantum. *)

type t = (Resource.t * Expr.t) list
(** Syntactic action with expression priorities, sorted by resource.  Use
    {!of_list} to build values and maintain the invariant. *)

type ground = (Resource.t * int) list
(** Action with fully evaluated priorities, sorted by resource. *)

val idle : t
(** The empty (idling) action: lets time pass without using resources. *)

val of_list : (Resource.t * Expr.t) list -> t
(** @raise Invalid_argument if a resource appears twice. *)

val singleton : Resource.t -> Expr.t -> t
val accesses : t -> (Resource.t * Expr.t) list
val resources : t -> Resource.Set.t
val is_idle : t -> bool

val union : t -> t -> t
(** @raise Invalid_argument if the two actions share a resource. *)

val subst : int Expr.Env.t -> t -> t
val ground : int Expr.Env.t -> t -> ground
val free_vars : t -> string list
val is_ground : t -> bool
val pp : t Fmt.t
val pp_ground : ground Fmt.t

(** Operations on ground actions, used by the operational semantics. *)
module Ground : sig
  type t = ground

  val idle : t
  val is_idle : t -> bool
  val resources : t -> Resource.Set.t

  val priority_of : t -> Resource.t -> int
  (** Priority of the access to a resource; 0 if the resource is unused. *)

  val disjoint : t -> t -> bool
  val union : t -> t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool

  val preempts : t -> t -> bool
  (** [preempts b a] is the ACSR preemption relation [a < b] on timed
      actions: every resource used in [a] is used in [b] with greater or
      equal priority and at least one resource of [b] has strictly greater
      priority (missing resources count as priority 0). *)

  val pp : t Fmt.t
end
