(* Concrete transition labels of the (instantiated) ACSR transition system,
   together with the preemption relation that defines the prioritized
   transition relation (paper, Section 3). *)

type t =
  | Action of Action.ground
      (** A timed action: consumes one quantum of global time. *)
  | Event of Label.t * Event.dir * int
      (** An unsynchronized communication offer, visible to the context. *)
  | Tau of Label.t option * int
      (** An internal step; [Some l] records the label whose
          synchronization produced it (written [tau\@l]). *)

let is_timed = function Action _ -> true | Event _ | Tau _ -> false

let equal (a : t) (b : t) = a = b
let compare = Stdlib.compare

(* The preemption relation on steps.  [preempts b a] means [b] disables [a]
   when both are enabled in the same state:
   - timed actions preempt each other by resource-wise priority domination;
   - an internal step with non-zero priority preempts any timed action,
     ensuring progress;
   - events with the same label and direction preempt by priority;
   - internal steps all carry the same label (tau — the [Some l]
     annotation only records the synchronization's origin, as the paper's
     [tau\@name] notation does), so a higher-priority internal step
     preempts any lower-priority one.  This is what lets the Urgency
     property arbitrate between the queues of an event-driven dispatcher
     (paper, Section 4.3). *)
let preempts (b : t) (a : t) =
  match (a, b) with
  | Action aa, Action ab -> Action.Ground.preempts ab aa
  | Action _, Tau (_, n) -> n > 0
  | Event (la, da, pa), Event (lb, db, pb) ->
      Label.equal la lb && da = db && pb > pa
  | Tau (_, pa), Tau (_, pb) -> pb > pa
  | Action _, Event _
  | Event _, (Action _ | Tau _)
  | Tau _, (Action _ | Event _) ->
      false

(* Keep only the maximal steps with respect to preemption: this implements
   the prioritized transition relation. *)
let prioritize (steps : (t * 'a) list) =
  let enabled = List.map fst steps in
  let preempted s = List.exists (fun s' -> preempts s' s) enabled in
  List.filter (fun (s, _) -> not (preempted s)) steps

let pp ppf = function
  | Action a -> Action.pp_ground ppf a
  | Event (l, d, 0) -> Fmt.pf ppf "%a%a" Label.pp l Event.pp_dir d
  | Event (l, d, p) ->
      Fmt.pf ppf "(%a%a,%d)" Label.pp l Event.pp_dir d p
  | Tau (None, p) -> Fmt.pf ppf "tau:%d" p
  | Tau (Some l, p) -> Fmt.pf ppf "tau@%a:%d" Label.pp l p
