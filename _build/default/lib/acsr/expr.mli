(** Integer expressions over the parameters of parameterized ACSR processes.

    Priorities of resource accesses and scope bounds may be expressions,
    which is how dynamic-priority schedulers such as EDF and LLF are encoded
    (paper, Section 5). *)

type t =
  | Int of int
  | Var of string
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Min of t * t
  | Max of t * t

exception Unbound_parameter of string

module Env : Map.S with type key = string

val eval : int Env.t -> t -> int
(** [eval env e] evaluates [e] under the parameter valuation [env].
    @raise Unbound_parameter if a variable of [e] is missing from [env].
    @raise Division_by_zero on division or modulo by zero. *)

val free_vars : t -> string list
(** Free parameters of an expression, with duplicates. *)

val is_ground : t -> bool
(** [is_ground e] holds when [e] contains no parameters. *)

val subst : int Env.t -> t -> t
(** [subst env e] replaces parameters bound in [env] by their values and
    folds constant subterms.  Parameters not bound in [env] are kept. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
