(* Utilization-based schedulability bounds: the Liu & Layland bound for
   rate-monotonic priorities and the exact U <= 1 condition for EDF with
   deadlines equal to periods.  These are the quickest (and coarsest)
   baselines: sufficient but not necessary for RM, so the three-valued
   verdict distinguishes guaranteed, unknown, and impossible. *)

type verdict = Schedulable | Unknown | Overloaded

type t = {
  utilization : float;
  bound : float;
  num_tasks : int;
  verdict : verdict;
}

let ll_bound n =
  if n <= 0 then 1.0 else float_of_int n *. ((2.0 ** (1.0 /. float_of_int n)) -. 1.0)

let rate_monotonic (tasks : Translate.Workload.task list) =
  let periodic =
    List.filter
      (fun (t : Translate.Workload.task) ->
        t.Translate.Workload.period <> None)
      tasks
  in
  let n = List.length periodic in
  let u = Translate.Workload.utilization periodic in
  let bound = ll_bound n in
  let verdict =
    if u <= bound +. 1e-12 then Schedulable
    else if u > 1.0 +. 1e-12 then Overloaded
    else Unknown
  in
  { utilization = u; bound; num_tasks = n; verdict }

let edf (tasks : Translate.Workload.task list) =
  let implicit_deadline (t : Translate.Workload.task) =
    match t.Translate.Workload.period with
    | Some p -> t.Translate.Workload.deadline >= p
    | None -> false
  in
  let u = Translate.Workload.utilization tasks in
  let exact = List.for_all implicit_deadline tasks in
  let verdict =
    if u > 1.0 +. 1e-12 then Overloaded
    else if exact then Schedulable
    else Unknown
  in
  { utilization = u; bound = 1.0; num_tasks = List.length tasks; verdict }

let pp_verdict ppf = function
  | Schedulable -> Fmt.string ppf "schedulable"
  | Unknown -> Fmt.string ppf "unknown (bound exceeded, not overloaded)"
  | Overloaded -> Fmt.string ppf "overloaded (U > 1)"

let pp ppf t =
  Fmt.pf ppf "U=%.3f bound=%.3f (n=%d): %a" t.utilization t.bound t.num_tasks
    pp_verdict t.verdict
