(* Classical response-time analysis (RTA) for fixed-priority preemptive
   scheduling of synchronous periodic tasks (Joseph & Pandya / Audsley).

   This is the style of analysis offered by MetaH for rate-monotonic
   priorities (paper, Section 6); we implement it as a baseline to compare
   against the state-exploration verdicts.  Exact for independent periodic
   tasks with deadlines no larger than periods, using worst-case execution
   times; event-driven tasks are outside its task model — one reason the
   paper argues for the process-algebraic approach. *)

type task_result = {
  task : Translate.Workload.task;
  response : int option;  (** worst-case response time, quanta; [None] if
                              the recurrence diverged past the deadline *)
  met : bool;
}

type t = {
  per_task : task_result list;
  schedulable : bool;
  applicable : bool;
      (** false when the task set falls outside the RTA task model *)
  reason : string option;
}

let in_task_model (tasks : Translate.Workload.task list) =
  let ok t =
    match (t.Translate.Workload.dispatch, t.Translate.Workload.period) with
    | Aadl.Props.Periodic, Some p -> t.Translate.Workload.deadline <= p
    | (Aadl.Props.Sporadic | Aadl.Props.Aperiodic | Aadl.Props.Background), _
    | Aadl.Props.Periodic, None ->
        false
  in
  List.for_all ok tasks

(* Tasks ordered from highest to lowest priority according to the static
   assignments (larger priority constant = higher). *)
let by_static_priority assignments =
  let static a =
    match a.Translate.Sched_policy.cpu_priority with
    | Acsr.Expr.Int n -> n
    | _ -> invalid_arg "Rta: dynamic priority assignment"
  in
  List.stable_sort (fun a b -> Int.compare (static b) (static a)) assignments
  |> List.map (fun a -> a.Translate.Sched_policy.task)

let response_time ~hp (task : Translate.Workload.task) =
  let c = task.Translate.Workload.cmax in
  let d = task.Translate.Workload.deadline in
  let interference w =
    List.fold_left
      (fun acc (h : Translate.Workload.task) ->
        let p = Option.get h.Translate.Workload.period in
        acc + (((w + p - 1) / p) * h.Translate.Workload.cmax))
      0 hp
  in
  let rec iterate w =
    let w' = c + interference w in
    if w' = w then Some w else if w' > d then None else iterate w'
  in
  iterate c

let analyze_ordered ordered_tasks =
  let rec go hp acc = function
    | [] -> List.rev acc
    | task :: rest ->
        let response = response_time ~hp task in
        let met =
          match response with
          | Some r -> r <= task.Translate.Workload.deadline
          | None -> false
        in
        go (hp @ [ task ]) ({ task; response; met } :: acc) rest
  in
  go [] [] ordered_tasks

(* Analyze the tasks of one processor under a fixed-priority protocol. *)
let analyze ~(protocol : Aadl.Props.scheduling_protocol)
    (tasks : Translate.Workload.task list) : t =
  match protocol with
  | Aadl.Props.Edf | Aadl.Props.Llf | Aadl.Props.Hierarchical ->
      {
        per_task = [];
        schedulable = false;
        applicable = false;
        reason = Some "RTA applies to flat fixed-priority protocols only";
      }
  | Aadl.Props.Rate_monotonic | Aadl.Props.Deadline_monotonic
  | Aadl.Props.Highest_priority_first ->
      if not (in_task_model tasks) then
        {
          per_task = [];
          schedulable = false;
          applicable = false;
          reason =
            Some
              "task set contains non-periodic threads or deadlines beyond \
               periods";
        }
      else
        let assignments = Translate.Sched_policy.assign protocol tasks in
        let ordered = by_static_priority assignments in
        let per_task = analyze_ordered ordered in
        {
          per_task;
          schedulable = List.for_all (fun r -> r.met) per_task;
          applicable = true;
          reason = None;
        }

let pp_task_result ppf r =
  Fmt.pf ppf "%a: response %a deadline %d -> %s" Aadl.Instance.pp_path
    r.task.Translate.Workload.path
    Fmt.(option ~none:(any "diverged") int)
    r.response r.task.Translate.Workload.deadline
    (if r.met then "met" else "MISSED")

let pp ppf t =
  if not t.applicable then
    Fmt.pf ppf "RTA not applicable: %a"
      Fmt.(option ~none:(any "unknown") string)
      t.reason
  else
    Fmt.pf ppf "@[<v>%a@,RTA verdict: %s@]"
      Fmt.(list ~sep:cut pp_task_result)
      t.per_task
      (if t.schedulable then "schedulable" else "not schedulable")
