(** Raising ACSR counterexample traces to AADL-level timelines. *)

type happening =
  | Dispatched of string list
  | Completed of string list
  | Event_queued of string
  | Event_consumed of string
  | Queue_overflowed of string
  | Activated of string list
  | Deactivated of string list
  | Mode_transition of string
  | Probe of string

val pp_happening : happening Fmt.t

type usage = {
  processors : string list list;
  buses : string list list;
  data : string list list;
}

type quantum_view = {
  at_time : int;
  happenings : happening list;
  usage : usage option;
}

type t = { quanta : quantum_view list; violation_time : int }

val raise_trace : registry:Translate.Naming.registry -> Versa.Trace.t -> t
val pp_quantum_view : quantum_view Fmt.t
val pp : t Fmt.t
