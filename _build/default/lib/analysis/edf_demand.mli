(** Processor-demand analysis for EDF over synchronous periodic tasks. *)

type violation = { at : int; demand : int }

type t = {
  applicable : bool;
  reason : string option;
  utilization : float;
  schedulable : bool;
  first_violation : violation option;
  checked_points : int;
}

val demand : Translate.Workload.task list -> int -> int
(** [demand tasks d]: cumulative execution demand of jobs with deadlines
    at or before [d]. *)

val analyze : Translate.Workload.task list -> t
(** Exact EDF schedulability for one processor (periodic, D <= T). *)

val pp : t Fmt.t
