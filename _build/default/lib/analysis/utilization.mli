(** Utilization-based bounds: Liu & Layland for RM, U <= 1 for EDF. *)

type verdict = Schedulable | Unknown | Overloaded

type t = {
  utilization : float;
  bound : float;
  num_tasks : int;
  verdict : verdict;
}

val ll_bound : int -> float
(** The Liu & Layland bound n(2^{1/n} - 1). *)

val rate_monotonic : Translate.Workload.task list -> t
val edf : Translate.Workload.task list -> t
val pp_verdict : verdict Fmt.t
val pp : t Fmt.t
