(** Cheddar-style deterministic scheduling simulator: one trajectory per
    processor, worst-case execution times, synchronous release (paper,
    Section 6 baseline). *)

type job = {
  task : Translate.Workload.task;
  released : int;
  abs_deadline : int;
  mutable remaining : int;
}

type miss = { miss_task : Translate.Workload.task; at_time : int }

type slot = Idle | Running of string list

type t = {
  horizon : int;
  timeline : slot array;
  misses : miss list;
  response_times : (string list * int list) list;
  schedulable : bool;
  preemptions : int;
}

exception Not_simulable of string

val hyperperiod : Translate.Workload.task list -> int

val simulate :
  ?horizon:int ->
  protocol:Aadl.Props.scheduling_protocol ->
  Translate.Workload.task list ->
  t
(** Simulate the tasks of one processor up to [horizon] (default: the
    hyperperiod).  Periodic and sporadic tasks only — sporadic tasks are
    driven at their maximum rate.
    @raise Not_simulable for aperiodic or background threads. *)

val worst_response : t -> string list -> int option
val pp_miss : miss Fmt.t
val pp : t Fmt.t
