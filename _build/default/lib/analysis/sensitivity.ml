(* Sensitivity analysis: how much can a thread's execution time grow
   before the system stops being schedulable?

   The exploration verdict is a monotone function of each thread's
   execution time (more computation can only add behaviours that miss
   deadlines: the Compute process's completion window only moves right),
   so binary search over a synthetic Compute_Execution_Time override
   finds the breakdown point exactly.  This is the "design exploration"
   use the paper's introduction motivates: analyze alternatives early, at
   the architecture level. *)

type t = {
  thread : string list;
  original_cmax : int;  (** quanta *)
  breakdown_cmax : int option;
      (** the largest cet (quanta) that keeps the whole system
          schedulable; [None] when the system is unschedulable already at
          cet = 1 *)
  slack : int option;  (** breakdown - original, when both exist *)
}

type options = {
  schedulability : Schedulability.options;
  max_cmax : int option;
      (** search ceiling; defaults to the thread's deadline *)
}

let default_options =
  { schedulability = Schedulability.default_options; max_cmax = None }

exception Error of string

(* Rebuild the workload with the thread's cet forced to [cet] quanta, by
   overriding the instance property before translation.  We synthesize a
   property in quanta-sized time units appended to the thread's
   association list (later associations win). *)
let with_cet ~(quantum : Aadl.Time.t) ~(thread : string list) ~cet
    (root : Aadl.Instance.t) : Aadl.Instance.t =
  let cet_time = Aadl.Time.of_ns (cet * Aadl.Time.to_ns quantum) in
  let prop =
    {
      Aadl.Ast.pname = "compute_execution_time";
      pvalue = Aadl.Ast.Ptime cet_time;
      applies_to = [];
      ploc = Aadl.Ast.no_loc;
    }
  in
  let rec update (inst : Aadl.Instance.t) path =
    match path with
    | [] -> { inst with Aadl.Instance.props = inst.Aadl.Instance.props @ [ prop ] }
    | seg :: rest ->
        {
          inst with
          Aadl.Instance.children =
            List.map
              (fun (c : Aadl.Instance.t) ->
                if
                  String.lowercase_ascii c.Aadl.Instance.name
                  = String.lowercase_ascii seg
                then update c rest
                else c)
              inst.Aadl.Instance.children;
        }
  in
  update root thread

let schedulable_with ~options ~quantum ~thread ~cet root =
  let root' = with_cet ~quantum ~thread ~cet root in
  let sched_options =
    {
      options.schedulability with
      Schedulability.translation_options =
        {
          options.schedulability.Schedulability.translation_options with
          Translate.Pipeline.quantum = Some quantum;
        };
    }
  in
  match Schedulability.analyze ~options:sched_options root' with
  | r -> Schedulability.is_schedulable r
  | exception Translate.Pipeline.Error _ ->
      (* cet beyond the deadline is trivially unschedulable *)
      false

let breakdown ?(options = default_options) ~(thread : string list)
    (root : Aadl.Instance.t) : t =
  let quantum =
    match
      options.schedulability.Schedulability.translation_options
        .Translate.Pipeline.quantum
    with
    | Some q -> q
    | None -> Translate.Workload.suggest_quantum root
  in
  let wl = Translate.Workload.extract ~quantum root in
  let task =
    match Translate.Workload.find_task wl thread with
    | Some t -> t
    | None ->
        raise
          (Error
             (Fmt.str "no thread %a in the model" Aadl.Instance.pp_path thread))
  in
  let original_cmax = task.Translate.Workload.cmax in
  let ceiling =
    match options.max_cmax with
    | Some m -> m
    | None -> task.Translate.Workload.deadline
  in
  let ok cet = schedulable_with ~options ~quantum ~thread ~cet root in
  if not (ok 1) then
    { thread; original_cmax; breakdown_cmax = None; slack = None }
  else begin
    (* largest passing cet in [1, ceiling]: binary search on the monotone
       boundary *)
    let rec search lo hi =
      (* invariant: lo passes; hi + 1 fails or hi = ceiling *)
      if lo >= hi then lo
      else
        let mid = (lo + hi + 1) / 2 in
        if ok mid then search mid hi else search lo (mid - 1)
    in
    let b = search 1 ceiling in
    {
      thread;
      original_cmax;
      breakdown_cmax = Some b;
      slack = Some (b - original_cmax);
    }
  end

let pp ppf t =
  match t.breakdown_cmax with
  | None ->
      Fmt.pf ppf "%a: unschedulable even at cet=1 (original %d)"
        Aadl.Instance.pp_path t.thread t.original_cmax
  | Some b ->
      Fmt.pf ppf "%a: cet %d, breakdown %d (slack %d quanta)"
        Aadl.Instance.pp_path t.thread t.original_cmax b
        (Option.value t.slack ~default:0)
