(* Raising ACSR failing scenarios back to the AADL level.

   VERSA reports counterexamples as sequences of ACSR steps; because the
   translation chooses names derived from the AADL model (Naming), each
   step can be re-interpreted: a [tau@dispatch_x] is a dispatch of thread
   x, a timed action using [cpu_p] is a quantum of execution on processor
   p, and so on.  The result is the "convenient time line form" the
   paper's OSATE plugin presents to the user (Sections 1 and 5). *)

open Acsr

type happening =
  | Dispatched of string list
  | Completed of string list
  | Event_queued of string
  | Event_consumed of string
  | Queue_overflowed of string
  | Activated of string list
  | Deactivated of string list
  | Mode_transition of string
  | Probe of string  (** observer probes and other unregistered labels *)

let pp_happening ppf = function
  | Dispatched p -> Fmt.pf ppf "dispatch %a" Aadl.Instance.pp_path p
  | Completed p -> Fmt.pf ppf "complete %a" Aadl.Instance.pp_path p
  | Event_queued c -> Fmt.pf ppf "event queued on %s" c
  | Event_consumed c -> Fmt.pf ppf "event consumed from %s" c
  | Queue_overflowed c -> Fmt.pf ppf "queue overflow on %s" c
  | Activated p -> Fmt.pf ppf "activate %a" Aadl.Instance.pp_path p
  | Deactivated p -> Fmt.pf ppf "deactivate %a" Aadl.Instance.pp_path p
  | Mode_transition t -> Fmt.pf ppf "mode switch %s" t
  | Probe l -> Fmt.pf ppf "event %s" l

type usage = {
  processors : string list list;  (** busy processors this quantum *)
  buses : string list list;
  data : string list list;
}

type quantum_view = {
  at_time : int;
  happenings : happening list;  (** instantaneous steps of the quantum *)
  usage : usage option;  (** [None] for the final partial quantum *)
}

type t = {
  quanta : quantum_view list;
  violation_time : int;  (** time of the deadlock *)
}

let happening_of_label registry name =
  match Translate.Naming.lookup registry name with
  | Some (Translate.Naming.Dispatch_of p) -> Dispatched p
  | Some (Translate.Naming.Done_of p) | Some (Translate.Naming.Complete_of p) -> Completed p
  | Some (Translate.Naming.Enqueue_on c) -> Event_queued c
  | Some (Translate.Naming.Dequeue_on c) -> Event_consumed c
  | Some (Translate.Naming.Overflow_on c) -> Queue_overflowed c
  | Some (Translate.Naming.Activate_of p) -> Activated p
  | Some (Translate.Naming.Deactivate_of p) -> Deactivated p
  | Some (Translate.Naming.Mode_trigger t) -> Mode_transition t
  | Some (Translate.Naming.Processor_use _ | Translate.Naming.Bus_use _ | Translate.Naming.Data_use _)
  | None ->
      Probe name

let happening_of_step registry (step : Step.t) =
  match step with
  | Step.Tau (Some l, _) -> Some (happening_of_label registry (Label.name l))
  | Step.Event (l, _, _) -> Some (happening_of_label registry (Label.name l))
  | Step.Tau (None, _) | Step.Action _ -> None

let usage_of_action registry (a : Action.ground) =
  let processors = ref [] and buses = ref [] and data = ref [] in
  List.iter
    (fun (r, _) ->
      match Translate.Naming.lookup registry (Resource.name r) with
      | Some (Translate.Naming.Processor_use p) -> processors := p :: !processors
      | Some (Translate.Naming.Bus_use p) -> buses := p :: !buses
      | Some (Translate.Naming.Data_use p) -> data := p :: !data
      | Some _ | None -> ())
    a;
  {
    processors = List.rev !processors;
    buses = List.rev !buses;
    data = List.rev !data;
  }

let raise_trace ~(registry : Translate.Naming.registry) (trace : Versa.Trace.t) : t =
  let quanta =
    List.map
      (fun (q : Versa.Trace.quantum) ->
        let happenings =
          List.filter_map (happening_of_step registry) q.Versa.Trace.instant
        in
        let usage =
          match q.Versa.Trace.tick with
          | Some (Step.Action a) -> Some (usage_of_action registry a)
          | Some _ | None -> None
        in
        { at_time = q.Versa.Trace.at_time; happenings; usage })
      (Versa.Trace.quanta trace)
  in
  { quanta; violation_time = Versa.Trace.duration trace }

let pp_usage ppf u =
  let section name ppf = function
    | [] -> ()
    | ps ->
        Fmt.pf ppf " %s %a" name
          Fmt.(list ~sep:comma Aadl.Instance.pp_path)
          ps
  in
  if u.processors = [] && u.buses = [] && u.data = [] then
    Fmt.string ppf " (all idle)"
  else begin
    section "run on" ppf u.processors;
    section "bus" ppf u.buses;
    section "shared data" ppf u.data
  end

let pp_quantum_view ppf q =
  let pp_happenings ppf = function
    | [] -> ()
    | hs -> Fmt.pf ppf "%a;" Fmt.(list ~sep:semi pp_happening) hs
  in
  match q.usage with
  | Some u ->
      Fmt.pf ppf "@[<h>t=%-3d %a%a@]" q.at_time pp_happenings q.happenings
        pp_usage u
  | None ->
      Fmt.pf ppf "@[<h>t=%-3d %a DEADLOCK: timing violation@]" q.at_time
        pp_happenings q.happenings

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_quantum_view) t.quanta
