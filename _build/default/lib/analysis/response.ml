(* Observed worst-case response times, extracted from the model by state
   exploration: the smallest latency bound (dispatch -> completion of the
   same thread) that holds on every path, found by binary search over the
   observer's bound.

   This turns the latency-observer machinery of Section 5 into a
   measurement instrument; on deterministic periodic task sets it must
   coincide exactly with classical response-time analysis, which the test
   suite checks. *)

type t = {
  thread : string list;
  response : int option;
      (** quanta; [None] when even the deadline bound is violated (the
          thread misses deadlines) *)
  deadline : int;
}

type options = Latency.options

let default_options = Latency.default_options

let met ~options ~thread ~bound_q ~quantum root =
  let bound = Aadl.Time.of_ns (bound_q * Aadl.Time.to_ns quantum) in
  let r = Latency.check ~options ~from_thread:thread ~to_thread:thread ~bound root in
  match r.Latency.verdict with
  | Latency.Latency_met -> true
  | Latency.Latency_violated _ -> false
  | Latency.Latency_inconclusive why -> raise (Latency.Error why)

let worst_response ?(options = default_options) ~(thread : string list)
    (root : Aadl.Instance.t) : t =
  let quantum =
    match options.Latency.translation_options.Translate.Pipeline.quantum with
    | Some q -> q
    | None -> Translate.Workload.suggest_quantum root
  in
  let wl = Translate.Workload.extract ~quantum root in
  let task =
    match Translate.Workload.find_task wl thread with
    | Some t -> t
    | None ->
        raise
          (Latency.Error
             (Fmt.str "no thread %a in the model" Aadl.Instance.pp_path thread))
  in
  let deadline = task.Translate.Workload.deadline in
  if not (met ~options ~thread ~bound_q:deadline ~quantum root) then
    { thread; response = None; deadline }
  else begin
    (* smallest passing bound in [cmin, deadline] *)
    let rec search lo hi =
      (* invariant: hi passes, lo - 1 <= everything below lo is untested
         or failing *)
      if lo >= hi then hi
      else
        let mid = (lo + hi) / 2 in
        if met ~options ~thread ~bound_q:mid ~quantum root then search lo mid
        else search (mid + 1) hi
    in
    let r = search (max 1 task.Translate.Workload.cmin) deadline in
    { thread; response = Some r; deadline }
  end

let pp ppf t =
  Fmt.pf ppf "%a: observed response %a (deadline %d)" Aadl.Instance.pp_path
    t.thread
    Fmt.(option ~none:(any "exceeds deadline") int)
    t.response t.deadline
