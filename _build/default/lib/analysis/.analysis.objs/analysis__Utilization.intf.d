lib/analysis/utilization.mli: Fmt Translate
