lib/analysis/utilization.ml: Fmt List Translate
