lib/analysis/response.ml: Aadl Fmt Latency Translate
