lib/analysis/schedulability.mli: Aadl Fmt Raise_trace Translate Versa
