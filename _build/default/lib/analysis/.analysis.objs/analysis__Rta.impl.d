lib/analysis/rta.ml: Aadl Acsr Fmt Int List Option Translate
