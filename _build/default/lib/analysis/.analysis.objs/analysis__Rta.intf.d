lib/analysis/rta.mli: Aadl Fmt Translate
