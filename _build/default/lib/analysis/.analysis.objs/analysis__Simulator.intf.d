lib/analysis/simulator.mli: Aadl Fmt Translate
