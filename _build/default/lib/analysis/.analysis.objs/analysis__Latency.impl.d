lib/analysis/latency.ml: Aadl Acsr Action Defs Expr Fmt Guard Label List Proc Raise_trace Translate Versa
