lib/analysis/latency.mli: Aadl Fmt Raise_trace Translate Versa
