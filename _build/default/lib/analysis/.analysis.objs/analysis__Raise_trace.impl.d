lib/analysis/raise_trace.ml: Aadl Acsr Action Fmt Label List Resource Step Translate Versa
