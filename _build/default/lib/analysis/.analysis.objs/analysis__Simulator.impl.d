lib/analysis/simulator.ml: Aadl Acsr Array Fmt Hashtbl List Stdlib Translate
