lib/analysis/edf_demand.ml: Aadl Fmt Int List Option Translate
