lib/analysis/sensitivity.mli: Aadl Fmt Schedulability
