lib/analysis/report.ml: Aadl Buffer Edf_demand Fmt Fun Latency List Option Printf Raise_trace Response Rta Schedulability Simulator Translate Utilization Versa
