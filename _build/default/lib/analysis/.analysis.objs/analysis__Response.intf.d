lib/analysis/response.mli: Aadl Fmt Latency
