lib/analysis/edf_demand.mli: Fmt Translate
