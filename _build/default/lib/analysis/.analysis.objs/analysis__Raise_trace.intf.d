lib/analysis/raise_trace.mli: Fmt Translate Versa
