lib/analysis/report.mli: Aadl Schedulability
