lib/analysis/schedulability.ml: Aadl Fmt List Raise_trace Translate Versa
