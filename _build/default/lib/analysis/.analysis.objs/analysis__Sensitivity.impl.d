lib/analysis/sensitivity.ml: Aadl Fmt List Option Schedulability String Translate
