(* Processor-demand analysis for EDF scheduling of synchronous periodic
   tasks (Baruah, Rosier & Howell): the task set is EDF-schedulable on one
   processor iff U <= 1 and, for every absolute deadline d within the
   analysis interval, the demand bound function

     dbf(d) = sum_i max(0, floor((d - D_i) / T_i) + 1) * C_i

   does not exceed d.  It suffices to check the deadline points up to the
   hyperperiod (synchronous release, D <= T).  This provides the exact
   EDF baseline against the state-exploration verdict. *)

type violation = { at : int; demand : int }

type t = {
  applicable : bool;
  reason : string option;
  utilization : float;
  schedulable : bool;
  first_violation : violation option;
  checked_points : int;
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let in_task_model (tasks : Translate.Workload.task list) =
  List.for_all
    (fun (t : Translate.Workload.task) ->
      match (t.Translate.Workload.dispatch, t.Translate.Workload.period) with
      | Aadl.Props.Periodic, Some p -> t.Translate.Workload.deadline <= p
      | _, _ -> false)
    tasks

let demand tasks d =
  List.fold_left
    (fun acc (t : Translate.Workload.task) ->
      let di = t.Translate.Workload.deadline in
      let p = Option.get t.Translate.Workload.period in
      if d < di then acc
      else acc + ((((d - di) / p) + 1) * t.Translate.Workload.cmax))
    0 tasks

let analyze (tasks : Translate.Workload.task list) : t =
  if tasks = [] then
    {
      applicable = true;
      reason = None;
      utilization = 0.0;
      schedulable = true;
      first_violation = None;
      checked_points = 0;
    }
  else if not (in_task_model tasks) then
    {
      applicable = false;
      reason = Some "demand analysis needs periodic tasks with D <= T";
      utilization = Translate.Workload.utilization tasks;
      schedulable = false;
      first_violation = None;
      checked_points = 0;
    }
  else
    let u = Translate.Workload.utilization tasks in
    if u > 1.0 +. 1e-9 then
      {
        applicable = true;
        reason = None;
        utilization = u;
        schedulable = false;
        first_violation = None;
        checked_points = 0;
      }
    else begin
      let hyper =
        List.fold_left
          (fun acc (t : Translate.Workload.task) ->
            lcm acc (Option.get t.Translate.Workload.period))
          1 tasks
      in
      (* all absolute deadlines k*T_i + D_i within the hyperperiod *)
      let points =
        List.concat_map
          (fun (t : Translate.Workload.task) ->
            let p = Option.get t.Translate.Workload.period in
            let di = t.Translate.Workload.deadline in
            let rec go k acc =
              let d = (k * p) + di in
              if d > hyper then acc else go (k + 1) (d :: acc)
            in
            go 0 [])
          tasks
        |> List.sort_uniq Int.compare
      in
      let violation =
        List.find_map
          (fun d ->
            let dem = demand tasks d in
            if dem > d then Some { at = d; demand = dem } else None)
          points
      in
      {
        applicable = true;
        reason = None;
        utilization = u;
        schedulable = violation = None;
        first_violation = violation;
        checked_points = List.length points;
      }
    end

let pp ppf t =
  if not t.applicable then
    Fmt.pf ppf "EDF demand analysis not applicable: %a"
      Fmt.(option ~none:(any "unknown") string)
      t.reason
  else
    match t.first_violation with
    | None ->
        Fmt.pf ppf "EDF demand: schedulable (U=%.3f, %d points checked)"
          t.utilization t.checked_points
    | Some v ->
        Fmt.pf ppf "EDF demand: overload at t=%d (demand %d, U=%.3f)" v.at
          v.demand t.utilization
