(** Markdown analysis reports: model inventory, verdict with failing
    scenario, baselines, optional observed response times. *)

type options = {
  schedulability : Schedulability.options;
  with_responses : bool;
  title : string option;
}

val default_options : options

val generate : ?options:options -> Aadl.Instance.t -> string
val write_file : ?options:options -> string -> Aadl.Instance.t -> unit
