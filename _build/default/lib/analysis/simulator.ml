(* A Cheddar-style discrete-time scheduling simulator (paper, Section 6
   relates the exploration approach to "simulation-based methods offered
   by tools such as Cheddar").

   The simulator executes one deterministic trajectory of the task set on
   each processor: synchronous release, worst-case execution times, and a
   deterministic tie-break.  Unlike the ACSR exploration it covers a
   single behaviour, so it can miss violations that only occur under
   other interleavings or execution-time choices — exactly the contrast
   the paper draws.  It is exact for independent synchronous periodic
   tasks under the policies below. *)

type job = {
  task : Translate.Workload.task;
  released : int;
  abs_deadline : int;
  mutable remaining : int;
}

type miss = { miss_task : Translate.Workload.task; at_time : int }

type slot = Idle | Running of string list  (** thread path *)

type t = {
  horizon : int;
  timeline : slot array;  (** who occupied the processor at each quantum *)
  misses : miss list;
  response_times : (string list * int list) list;
      (** per task, observed response times of completed jobs *)
  schedulable : bool;
  preemptions : int;
}

exception Not_simulable of string

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let hyperperiod (tasks : Translate.Workload.task list) =
  List.fold_left
    (fun acc (t : Translate.Workload.task) ->
      match t.Translate.Workload.period with
      | Some p -> lcm acc p
      | None -> acc)
    1 tasks

(* Priority of a ready job at time [now] under the given protocol: larger
   wins; ties broken by task path for determinism. *)
let job_priority ~protocol ~static now job =
  match protocol with
  | Aadl.Props.Edf -> -job.abs_deadline
  | Aadl.Props.Llf ->
      let laxity = job.abs_deadline - now - job.remaining in
      -laxity
  | Aadl.Props.Rate_monotonic | Aadl.Props.Deadline_monotonic
  | Aadl.Props.Highest_priority_first ->
      List.assoc job.task.Translate.Workload.path static
  | Aadl.Props.Hierarchical ->
      raise (Not_simulable "hierarchical scheduling is not simulated")

let static_priorities ~protocol tasks =
  match protocol with
  | Aadl.Props.Edf | Aadl.Props.Llf -> []
  | Aadl.Props.Hierarchical ->
      raise (Not_simulable "hierarchical scheduling is not simulated")
  | Aadl.Props.Rate_monotonic | Aadl.Props.Deadline_monotonic
  | Aadl.Props.Highest_priority_first ->
      Translate.Sched_policy.assign protocol tasks
      |> List.map (fun (a : Translate.Sched_policy.assignment) ->
             match a.Translate.Sched_policy.cpu_priority with
             | Acsr.Expr.Int n -> (a.Translate.Sched_policy.task.Translate.Workload.path, n)
             | _ -> assert false)

let simulate ?horizon ~(protocol : Aadl.Props.scheduling_protocol)
    (tasks : Translate.Workload.task list) : t =
  List.iter
    (fun (t : Translate.Workload.task) ->
      match (t.Translate.Workload.dispatch, t.Translate.Workload.period) with
      | (Aadl.Props.Periodic | Aadl.Props.Sporadic), Some _ -> ()
      | d, _ ->
          raise
            (Not_simulable
               (Fmt.str "%a: %a threads are not simulated deterministically"
                  Aadl.Instance.pp_path t.Translate.Workload.path
                  Aadl.Props.pp_dispatch_protocol d)))
    tasks;
  let horizon =
    match horizon with Some h -> h | None -> max 1 (hyperperiod tasks)
  in
  let static = static_priorities ~protocol tasks in
  let timeline = Array.make horizon Idle in
  let ready : job list ref = ref [] in
  let misses = ref [] in
  let responses = Hashtbl.create 8 in
  let preemptions = ref 0 in
  let last_running = ref None in
  (* sporadic threads are simulated at their maximum rate (minimum
     separation = period): the worst case for processor demand *)
  for now = 0 to horizon - 1 do
    (* releases at this instant *)
    List.iter
      (fun (t : Translate.Workload.task) ->
        match t.Translate.Workload.period with
        | Some p when now mod p = 0 ->
            ready :=
              {
                task = t;
                released = now;
                abs_deadline = now + t.Translate.Workload.deadline;
                remaining = t.Translate.Workload.cmax;
              }
              :: !ready
        | Some _ | None -> ())
      tasks;
    (* deadline misses: a job whose absolute deadline has arrived with
       work left *)
    let missed, alive =
      List.partition (fun j -> now >= j.abs_deadline && j.remaining > 0) !ready
    in
    List.iter
      (fun j ->
        misses := { miss_task = j.task; at_time = j.abs_deadline } :: !misses)
      missed;
    ready := alive;
    (* pick the highest-priority ready job *)
    let best =
      List.fold_left
        (fun acc j ->
          match acc with
          | None -> Some j
          | Some b ->
              let pj = job_priority ~protocol ~static now j
              and pb = job_priority ~protocol ~static now b in
              if
                pj > pb
                || pj = pb
                   && j.task.Translate.Workload.path
                      < b.task.Translate.Workload.path
              then Some j
              else acc)
        None !ready
    in
    (match best with
    | None ->
        timeline.(now) <- Idle;
        last_running := None
    | Some job ->
        timeline.(now) <- Running job.task.Translate.Workload.path;
        (match !last_running with
        | Some (prev, released) when prev <> job.task.Translate.Workload.path
          -> (
            (* count a preemption when the displaced job still has work *)
            match
              List.find_opt
                (fun j ->
                  j.task.Translate.Workload.path = prev
                  && j.released = released && j.remaining > 0)
                !ready
            with
            | Some _ -> incr preemptions
            | None -> ())
        | Some _ | None -> ());
        last_running := Some (job.task.Translate.Workload.path, job.released);
        job.remaining <- job.remaining - 1;
        if job.remaining = 0 then begin
          let rt = now + 1 - job.released in
          let key = job.task.Translate.Workload.path in
          Hashtbl.replace responses key
            (rt :: (try Hashtbl.find responses key with Not_found -> []));
          ready := List.filter (fun j -> j != job) !ready
        end)
  done;
  (* a final check catches jobs whose deadline falls exactly on the
     horizon (e.g. released at h - p with D = p): they had their last
     chance to execute at instant h - 1 *)
  List.iter
    (fun j ->
      if j.remaining > 0 && j.abs_deadline <= horizon then
        misses := { miss_task = j.task; at_time = j.abs_deadline } :: !misses)
    !ready;
  let response_times =
    Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) responses []
    |> List.sort Stdlib.compare
  in
  {
    horizon;
    timeline;
    misses = List.rev !misses;
    response_times;
    schedulable = !misses = [];
    preemptions = !preemptions;
  }

let worst_response t path =
  match List.assoc_opt path t.response_times with
  | Some (_ :: _ as rts) -> Some (List.fold_left max 0 rts)
  | Some [] | None -> None

let pp_miss ppf m =
  Fmt.pf ppf "%a misses its deadline at t=%d" Aadl.Instance.pp_path
    m.miss_task.Translate.Workload.path m.at_time

let pp ppf t =
  Fmt.pf ppf "@[<v>horizon=%d, %s, %d preemptions%a@]" t.horizon
    (if t.schedulable then "no deadline miss" else "deadline misses")
    t.preemptions
    Fmt.(list ~sep:nop (cut ++ pp_miss))
    t.misses
