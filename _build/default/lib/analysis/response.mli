(** Observed worst-case response times via binary search over latency
    observers: the exploration-based counterpart of classical RTA. *)

type t = {
  thread : string list;
  response : int option;
  deadline : int;
}

type options = Latency.options

val default_options : options

val worst_response :
  ?options:options -> thread:string list -> Aadl.Instance.t -> t
(** The smallest dispatch-to-completion bound (in quanta) that holds on
    every path; [None] when the thread can miss its deadline.
    @raise Latency.Error for unknown threads or inconclusive explorations. *)

val pp : t Fmt.t
