(** Classical response-time analysis for fixed-priority scheduling — the
    MetaH-style baseline (paper, Section 6). *)

type task_result = {
  task : Translate.Workload.task;
  response : int option;
  met : bool;
}

type t = {
  per_task : task_result list;
  schedulable : bool;
  applicable : bool;
  reason : string option;
}

val analyze :
  protocol:Aadl.Props.scheduling_protocol -> Translate.Workload.task list -> t
(** Analyze the tasks of one processor.  Applicable to fixed-priority
    protocols over synchronous periodic tasks with deadlines within
    periods; [applicable = false] otherwise. *)

val response_time :
  hp:Translate.Workload.task list -> Translate.Workload.task -> int option
(** Worst-case response time of a task given the set of higher-priority
    tasks; [None] when the recurrence exceeds the deadline. *)

val pp_task_result : task_result Fmt.t
val pp : t Fmt.t
