(** Sensitivity analysis: the breakdown execution time of a thread — the
    largest cet that keeps the whole system schedulable — found by binary
    search over exploration verdicts. *)

type t = {
  thread : string list;
  original_cmax : int;
  breakdown_cmax : int option;
  slack : int option;
}

type options = {
  schedulability : Schedulability.options;
  max_cmax : int option;
}

val default_options : options

exception Error of string

val with_cet :
  quantum:Aadl.Time.t ->
  thread:string list ->
  cet:int ->
  Aadl.Instance.t ->
  Aadl.Instance.t
(** A copy of the instance tree with the thread's
    [Compute_Execution_Time] overridden to [cet] quanta. *)

val breakdown :
  ?options:options -> thread:string list -> Aadl.Instance.t -> t

val pp : t Fmt.t
