  $ cat > pipeline.aadl <<'AADL'
  > processor cpu
  > properties
  >   Scheduling_Protocol => DEADLINE_MONOTONIC_PROTOCOL;
  > end cpu;
  > thread sensor
  > features
  >   sample: out data port;
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 5 ms;
  >   Compute_Execution_Time => 1 ms;
  >   Compute_Deadline => 5 ms;
  > end sensor;
  > thread filter
  > features
  >   raw: in data port;
  >   clean: out data port;
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 5 ms;
  >   Compute_Execution_Time => 2 ms;
  >   Compute_Deadline => 5 ms;
  > end filter;
  > system s
  > end s;
  > system implementation s.impl
  > subcomponents
  >   cpu1: processor cpu;
  >   sense: thread sensor;
  >   filt: thread filter;
  > connections
  >   c1: port sense.sample -> filt.raw;
  > properties
  >   Actual_Processor_Binding => reference (cpu1) applies to sense;
  >   Actual_Processor_Binding => reference (cpu1) applies to filt;
  > end s.impl;
  > AADL
  $ aadl_sched latency pipeline.aadl --from sense --to filt --bound 5000
  $ aadl_sched latency pipeline.aadl --from sense --to filt --bound 1000 | head -n 1
  $ aadl_sched simulate pipeline.aadl
  $ aadl_sched report pipeline.aadl -o report.md
  $ grep -c '^##' report.md
  $ grep 'Verdict' report.md
