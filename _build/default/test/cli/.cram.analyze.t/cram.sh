  $ cat > light.aadl <<'AADL'
  > processor cpu
  > properties
  >   Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  > end cpu;
  > thread t1
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 4 ms;
  >   Compute_Execution_Time => 1 ms;
  >   Compute_Deadline => 4 ms;
  > end t1;
  > thread t2
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 6 ms;
  >   Compute_Execution_Time => 2 ms;
  >   Compute_Deadline => 6 ms;
  > end t2;
  > system s
  > end s;
  > system implementation s.impl
  > subcomponents
  >   cpu1: processor cpu;
  >   a: thread t1;
  >   b: thread t2;
  > properties
  >   Actual_Processor_Binding => reference (cpu1) applies to a;
  >   Actual_Processor_Binding => reference (cpu1) applies to b;
  > end s.impl;
  > AADL
  $ aadl_sched check light.aadl
  $ aadl_sched analyze light.aadl | sed 's/([0-9.]*s)/(TIME)/'
  $ sed -e 's/Period => 4 ms;/Period => 5 ms;/' \
  >     -e 's/Period => 6 ms;/Period => 7 ms;/' \
  >     -e 's/Compute_Deadline => 4 ms;/Compute_Deadline => 5 ms;/' \
  >     -e 's/Compute_Deadline => 6 ms;/Compute_Deadline => 7 ms;/' \
  >     -e 's/Compute_Execution_Time => 2 ms;/Compute_Execution_Time => 4 ms;/' \
  >     -e 's/Compute_Execution_Time => 1 ms;/Compute_Execution_Time => 2 ms;/' \
  >     light.aadl > crossover.aadl
  $ aadl_sched analyze crossover.aadl | sed 's/([0-9.]*s)/(TIME)/'
  $ aadl_sched analyze crossover.aadl -p edf | tail -n 1
  $ aadl_sched translate light.aadl -o light.acsr
  $ aadl_sched acsr light.acsr | head -n 2
