Reports, latency observers and the deterministic simulator.

  $ cat > pipeline.aadl <<'AADL'
  > processor cpu
  > properties
  >   Scheduling_Protocol => DEADLINE_MONOTONIC_PROTOCOL;
  > end cpu;
  > thread sensor
  > features
  >   sample: out data port;
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 5 ms;
  >   Compute_Execution_Time => 1 ms;
  >   Compute_Deadline => 5 ms;
  > end sensor;
  > thread filter
  > features
  >   raw: in data port;
  >   clean: out data port;
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 5 ms;
  >   Compute_Execution_Time => 2 ms;
  >   Compute_Deadline => 5 ms;
  > end filter;
  > system s
  > end s;
  > system implementation s.impl
  > subcomponents
  >   cpu1: processor cpu;
  >   sense: thread sensor;
  >   filt: thread filter;
  > connections
  >   c1: port sense.sample -> filt.raw;
  > properties
  >   Actual_Processor_Binding => reference (cpu1) applies to sense;
  >   Actual_Processor_Binding => reference (cpu1) applies to filt;
  > end s.impl;
  > AADL

  $ aadl_sched latency pipeline.aadl --from sense --to filt --bound 5000
  bound=5 quanta: latency bound met on every path

  $ aadl_sched latency pipeline.aadl --from sense --to filt --bound 1000 | head -n 1
  bound=1 quanta: latency VIOLATED; scenario:

  $ aadl_sched simulate pipeline.aadl
  == processor cpu1 (DEADLINE_MONOTONIC_PROTOCOL) ==
  horizon=5, no deadline miss, 0 preemptions

  $ aadl_sched report pipeline.aadl -o report.md
  report written to report.md
  $ grep -c '^##' report.md
  6
  $ grep 'Verdict' report.md
  **Verdict: schedulable** — every deadline is met on every path.
