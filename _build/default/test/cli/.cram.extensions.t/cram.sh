  $ cat > modal.aadl <<'AADL'
  > processor cpu
  > properties
  >   Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  > end cpu;
  > thread ctl
  > features
  >   alarm: out event port;
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 10 ms;
  >   Compute_Execution_Time => 2 ms;
  >   Compute_Deadline => 10 ms;
  > end ctl;
  > thread work
  > properties
  >   Dispatch_Protocol => Periodic;
  >   Period => 10 ms;
  >   Compute_Execution_Time => 6 ms;
  >   Compute_Deadline => 10 ms;
  > end work;
  > system s
  > end s;
  > system implementation s.impl
  > subcomponents
  >   cpu1: processor cpu;
  >   c: thread ctl;
  >   wn: thread work in modes (nominal);
  >   wd: thread work in modes (degraded);
  > modes
  >   nominal: initial mode;
  >   degraded: mode;
  >   nominal -[ c.alarm ]-> degraded;
  > properties
  >   Actual_Processor_Binding => reference (cpu1) applies to c;
  >   Actual_Processor_Binding => reference (cpu1) applies to wn;
  >   Actual_Processor_Binding => reference (cpu1) applies to wd;
  > end s.impl;
  > AADL
  $ aadl_sched analyze modal.aadl | tail -n 1
  $ aadl_sched info modal.aadl --export-xml modal.xml | head -n 1
  $ aadl_sched analyze modal.xml | tail -n 1
  $ printf 'thread t\nfeatures\n  zap zap;\nend t;\n' > bad.aadl
  $ aadl_sched check bad.aadl
  $ printf 'X = {(cpu,} : NIL;\n' > bad.acsr
  $ aadl_sched acsr bad.acsr
  $ aadl_sched sensitivity modal.aadl --thread wn
