test/test_invariants.ml: Aadl Acsr Alcotest Analysis Array Gen Hashtbl List QCheck2 QCheck_alcotest Translate Versa
