test/test_modal.mli:
