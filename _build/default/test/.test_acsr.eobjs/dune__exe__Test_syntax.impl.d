test/test_syntax.ml: Aadl Acsr Action Alcotest Defs Event Expr Fmt Gen Guard Label List Proc QCheck2 QCheck_alcotest Resource Syntax Translate
