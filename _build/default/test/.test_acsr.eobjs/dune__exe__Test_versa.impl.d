test/test_versa.ml: Acsr Action Alcotest Array Defs Expr Label List Proc QCheck2 QCheck_alcotest Resource Semantics Step String Versa
