test/test_xml.ml: Aadl Alcotest Analysis Gen List String Versa
