test/test_acsr.mli:
