test/test_modal.ml: Aadl Alcotest Analysis Gen List Option Translate
