test/test_versa.mli:
