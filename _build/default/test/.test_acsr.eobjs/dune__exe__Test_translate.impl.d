test/test_translate.ml: Aadl Acsr Alcotest Analysis Array Fmt Gen Hashtbl Int List Naming Option Pipeline Printf Sched_policy Skeleton String Translate Versa Workload
