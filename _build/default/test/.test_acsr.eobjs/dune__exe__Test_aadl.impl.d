test/test_aadl.ml: Aadl Acsr Alcotest Bytes Char Fmt List Option Random String
