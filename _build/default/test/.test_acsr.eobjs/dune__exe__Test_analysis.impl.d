test/test_analysis.ml: Aadl Alcotest Analysis Array Buffer Fmt Gen List Option QCheck2 QCheck_alcotest String Translate
