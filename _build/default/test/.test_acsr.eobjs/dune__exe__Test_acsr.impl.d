test/test_acsr.ml: Acsr Action Alcotest Array Defs Event Expr Guard Label List Proc QCheck2 QCheck_alcotest Resource Semantics Step
