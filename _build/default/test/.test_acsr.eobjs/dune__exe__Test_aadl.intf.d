test/test_aadl.mli:
