(* Tests for the AADL-to-ACSR translation: workload extraction, priority
   assignment policies, thread skeletons (Fig. 5), dispatchers (Fig. 6),
   queue processes (Section 4.4) and whole-model translation (Algorithm 1,
   checked against the paper's own count for the cruise-control model). *)

open Translate

let quantum = Aadl.Time.of_ms 1

let workload_of text =
  Workload.extract ~quantum (Aadl.Instantiate.of_string text)

let light = Gen.periodic_system Gen.light_set
let crossover = Gen.periodic_system Gen.crossover_set

(* {1 Workload extraction} *)

let test_workload_basic () =
  let wl = workload_of light in
  Alcotest.(check int) "two tasks" 2 (List.length wl.Workload.tasks);
  let t1 = Option.get (Workload.find_task wl [ "t1_i" ]) in
  Alcotest.(check (option int)) "period 4 quanta" (Some 4) t1.Workload.period;
  Alcotest.(check int) "cmax 1" 1 t1.Workload.cmax;
  Alcotest.(check int) "deadline 4" 4 t1.Workload.deadline;
  Alcotest.(check (list string)) "bound" [ "cpu1" ] t1.Workload.processor

let test_workload_rounding () =
  (* cet rounds up, period/deadline round down *)
  let text =
    Gen.periodic_system
      [
        {
          Gen.name = "t1";
          period_ms = 7;
          cet_min_ms = 3;
          cet_max_ms = 3;
          deadline_ms = 7;
        };
      ]
  in
  let wl =
    Workload.extract ~quantum:(Aadl.Time.of_ms 2)
      (Aadl.Instantiate.of_string text)
  in
  let t1 = List.hd wl.Workload.tasks in
  Alcotest.(check int) "cet 3ms -> 2 quanta (up)" 2 t1.Workload.cmax;
  Alcotest.(check (option int)) "period 7ms -> 3 quanta (down)" (Some 3)
    t1.Workload.period;
  Alcotest.(check int) "deadline 7ms -> 3 quanta (down)" 3 t1.Workload.deadline

let test_workload_rejects_infeasible () =
  let text =
    Gen.periodic_system
      [
        {
          Gen.name = "t1";
          period_ms = 4;
          cet_min_ms = 3;
          cet_max_ms = 3;
          deadline_ms = 2;
        };
      ]
  in
  Alcotest.(check bool) "cmax > deadline rejected" true
    (try
       ignore (workload_of text);
       false
     with Workload.Error _ -> true)

let test_workload_utilization () =
  let wl = workload_of crossover in
  let u = Workload.utilization wl.Workload.tasks in
  Alcotest.(check bool) "U ~ 0.971" true (abs_float (u -. 0.9714) < 0.001)

let test_suggest_quantum () =
  let root = Aadl.Instantiate.of_string (Gen.cruise_control ()) in
  let q = Workload.suggest_quantum root in
  Alcotest.(check int) "gcd of 100/50/10/20 ms" 10_000_000 (Aadl.Time.to_ns q)

(* {1 Priority assignment} *)

let tasks_of text = (workload_of text).Workload.tasks

let static_prio assignments name =
  let a =
    List.find
      (fun (a : Sched_policy.assignment) ->
        a.Sched_policy.task.Workload.path = [ name ])
      assignments
  in
  match a.Sched_policy.cpu_priority with
  | Acsr.Expr.Int n -> n
  | e -> Alcotest.fail (Fmt.str "expected static priority, got %a" Acsr.Expr.pp e)

let test_rm_ordering () =
  let assignments = Sched_policy.rate_monotonic (tasks_of crossover) in
  Alcotest.(check bool) "shorter period higher priority" true
    (static_prio assignments "t1_i" > static_prio assignments "t2_i")

let test_dm_ordering () =
  let text =
    Gen.periodic_system
      [
        {
          Gen.name = "t1";
          period_ms = 10;
          cet_min_ms = 1;
          cet_max_ms = 1;
          deadline_ms = 3;
        };
        {
          Gen.name = "t2";
          period_ms = 5;
          cet_min_ms = 1;
          cet_max_ms = 1;
          deadline_ms = 5;
        };
      ]
  in
  let assignments = Sched_policy.deadline_monotonic (tasks_of text) in
  Alcotest.(check bool) "shorter deadline wins despite longer period" true
    (static_prio assignments "t1_i" > static_prio assignments "t2_i")

let test_static_priorities_distinct () =
  let specs =
    List.init 5 (fun i ->
        Gen.simple_spec
          ~name:(Printf.sprintf "t%d" (i + 1))
          ~period_ms:10 ~cet_ms:1 ())
  in
  let assignments =
    Sched_policy.rate_monotonic (tasks_of (Gen.periodic_system specs))
  in
  let prios =
    List.map
      (fun (a : Sched_policy.assignment) ->
        match a.Sched_policy.cpu_priority with
        | Acsr.Expr.Int n -> n
        | _ -> -1)
      assignments
  in
  Alcotest.(check int) "all distinct" 5
    (List.length (List.sort_uniq Int.compare prios))

let test_edf_expression () =
  let assignments = Sched_policy.edf (tasks_of crossover) in
  (* t1: d=5, dmax=7 -> base 3; t2: d=7 -> base 1 *)
  let expr_of name =
    (List.find
       (fun (a : Sched_policy.assignment) ->
         a.Sched_policy.task.Workload.path = [ name ])
       assignments)
      .Sched_policy.cpu_priority
  in
  let eval name t =
    Acsr.Expr.eval
      Acsr.Expr.Env.(empty |> add "t" t |> add "e" 0)
      (expr_of name)
  in
  Alcotest.(check int) "t1 at t=0" 3 (eval "t1_i" 0);
  Alcotest.(check int) "t2 at t=0" 1 (eval "t2_i" 0);
  (* as t2's deadline approaches, it overtakes a fresh t1 dispatch *)
  Alcotest.(check bool) "t2 overtakes at t=3" true (eval "t2_i" 3 > eval "t1_i" 0);
  Alcotest.(check bool) "priorities stay positive" true (eval "t2_i" 0 >= 1)

let test_llf_expression () =
  let assignments = Sched_policy.llf (tasks_of crossover) in
  let expr_of name =
    (List.find
       (fun (a : Sched_policy.assignment) ->
         a.Sched_policy.task.Workload.path = [ name ])
       assignments)
      .Sched_policy.cpu_priority
  in
  let eval name t e =
    Acsr.Expr.eval
      Acsr.Expr.Env.(empty |> add "t" t |> add "e" e)
      (expr_of name)
  in
  (* laxity of t2 at dispatch: 7 - 4 = 3; executing reduces priority growth *)
  let at_dispatch = eval "t2_i" 0 0 in
  let after_preemption = eval "t2_i" 2 0 in
  let after_execution = eval "t2_i" 2 2 in
  Alcotest.(check bool) "preemption raises priority" true
    (after_preemption > at_dispatch);
  Alcotest.(check bool) "execution keeps laxity constant" true
    (after_execution = at_dispatch)

(* {1 Hierarchical scheduling (extension, paper Section 7)} *)

let hier_assignments text =
  let root = Aadl.Instantiate.of_string text in
  let tr = Pipeline.translate root in
  List.concat_map snd tr.Pipeline.assignments

let eval_prio env_t env_e e =
  Acsr.Expr.eval Acsr.Expr.Env.(empty |> add "t" env_t |> add "e" env_e) e

let test_hierarchical_banding () =
  let assignments = hier_assignments (Gen.hierarchical_system ()) in
  let prio_of name =
    (List.find
       (fun (a : Sched_policy.assignment) ->
         a.Sched_policy.task.Workload.path = name)
       assignments)
      .Sched_policy.cpu_priority
  in
  (* every critical priority exceeds every best-effort value, for any
     parameter valuation within bounds (t <= deadline 8) *)
  let crit_min =
    min (eval_prio 0 0 (prio_of [ "crit"; "h1" ]))
      (eval_prio 0 0 (prio_of [ "crit"; "h2" ]))
  in
  let be_max =
    max
      (eval_prio 8 0 (prio_of [ "bg"; "be1" ]))
      (eval_prio 8 0 (prio_of [ "bg"; "be2" ]))
  in
  Alcotest.(check bool) "critical band strictly above" true (crit_min > be_max);
  (* within the critical group, RM ordering: h1 (period 4) above h2 *)
  Alcotest.(check bool) "local RM order" true
    (eval_prio 0 0 (prio_of [ "crit"; "h1" ])
    > eval_prio 0 0 (prio_of [ "crit"; "h2" ]))

let test_hierarchical_verdicts () =
  let ok =
    Analysis.Schedulability.analyze
      (Aadl.Instantiate.of_string (Gen.hierarchical_system ()))
  in
  Alcotest.(check bool) "critical on top: schedulable" true
    (Analysis.Schedulability.is_schedulable ok);
  let flipped =
    Analysis.Schedulability.analyze
      (Aadl.Instantiate.of_string
         (Gen.hierarchical_system ~critical_rank:1 ~besteffort_rank:10 ()))
  in
  Alcotest.(check bool) "best-effort on top: starves h1" false
    (Analysis.Schedulability.is_schedulable flipped)

let test_local_bounds () =
  let tasks = tasks_of (Gen.periodic_system Gen.crossover_set) in
  Alcotest.(check int) "static bound = member count" 2
    (Sched_policy.local_bound Aadl.Props.Rate_monotonic tasks);
  Alcotest.(check int) "edf bound = dmax + 1" 8
    (Sched_policy.local_bound Aadl.Props.Edf tasks);
  Alcotest.(check int) "llf bound = dmax + cmax + 1" 12
    (Sched_policy.local_bound Aadl.Props.Llf tasks)

let test_flat_assign_rejects_hierarchical () =
  let tasks = tasks_of (Gen.periodic_system Gen.light_set) in
  Alcotest.(check bool) "assign raises" true
    (try
       ignore (Sched_policy.assign Aadl.Props.Hierarchical tasks);
       false
     with Sched_policy.Unsupported _ -> true)

(* {1 Skeleton structure (Fig. 5)} *)

let skeleton_for text name =
  let wl = workload_of text in
  let task = Option.get (Workload.find_task wl [ name ]) in
  let registry = Naming.create_registry () in
  Skeleton.generate ~completion_probes:[] ~registry ~task
    ~cpu_priority:(Acsr.Expr.Int 1) ()

let test_skeleton_defs () =
  let sk = skeleton_for light "t1_i" in
  Alcotest.(check int) "await/compute/emit" 3 (List.length sk.Skeleton.defs);
  let names = List.map (fun (n, _, _) -> n) sk.Skeleton.defs in
  Alcotest.(check bool) "compute def present" true
    (List.mem "Th_t1_i_compute" names)

let test_skeleton_compute_params () =
  let sk = skeleton_for light "t1_i" in
  let _, formals, _ =
    List.find (fun (n, _, _) -> n = "Th_t1_i_compute") sk.Skeleton.defs
  in
  Alcotest.(check (list string)) "parameters e and t" [ "e"; "t" ] formals

let test_skeleton_behaviour () =
  (* cet = 2: dispatch, two computing quanta, completion event *)
  let text =
    Gen.periodic_system [ Gen.simple_spec ~name:"t1" ~period_ms:6 ~cet_ms:2 () ]
  in
  let sk = skeleton_for text "t1_i" in
  let defs =
    List.fold_left
      (fun env (name, formals, body) -> Acsr.Defs.add env ~name ~formals body)
      Acsr.Defs.empty sk.Skeleton.defs
  in
  (* drive the skeleton manually: dispatch then compute *)
  let steps p = Acsr.Semantics.steps defs p in
  let initial = sk.Skeleton.initial in
  let after_dispatch =
    List.find_map
      (fun (s, p) ->
        match s with
        | Acsr.Step.Event (l, Acsr.Event.In, _)
          when Acsr.Label.equal l sk.Skeleton.dispatch ->
            Some p
        | _ -> None)
      (steps initial)
    |> Option.get
  in
  (* first quantum: computing (continue) or preempted-idle *)
  let computing =
    List.filter_map
      (fun (s, p) ->
        match s with
        | Acsr.Step.Action a when not (Acsr.Action.Ground.is_idle a) -> Some p
        | _ -> None)
      (steps after_dispatch)
  in
  Alcotest.(check int) "one computing continuation at e=0" 1
    (List.length computing);
  (* second quantum: the completing step leads to emit *)
  let second = steps (List.hd computing) in
  let to_emit =
    List.exists
      (fun (s, p) ->
        match (s, p) with
        | Acsr.Step.Action a, Acsr.Proc.Call (n, [])
          when not (Acsr.Action.Ground.is_idle a) ->
            n = "Th_t1_i_emit"
        | _ -> false)
      second
  in
  Alcotest.(check bool) "completing step reaches emit" true to_emit

let test_skeleton_nondeterministic_cet () =
  (* cet range [1,2]: after the first computing quantum both "continue"
     and "complete" must be offered *)
  let text =
    Gen.periodic_system
      [
        {
          Gen.name = "t1";
          period_ms = 6;
          cet_min_ms = 1;
          cet_max_ms = 2;
          deadline_ms = 6;
        };
      ]
  in
  let sk = skeleton_for text "t1_i" in
  let defs =
    List.fold_left
      (fun env (name, formals, body) -> Acsr.Defs.add env ~name ~formals body)
      Acsr.Defs.empty sk.Skeleton.defs
  in
  let after_dispatch =
    Acsr.Defs.instantiate defs "Th_t1_i_compute" [ 0; 0 ]
  in
  let timed =
    List.filter
      (fun (s, _) ->
        match s with
        | Acsr.Step.Action a -> not (Acsr.Action.Ground.is_idle a)
        | _ -> false)
      (Acsr.Semantics.steps defs after_dispatch)
  in
  Alcotest.(check int) "continue and complete both offered" 2
    (List.length timed)

(* {1 Dispatcher semantics at the ACSR level} *)

(* In any reachable path, two dispatches of a sporadic thread are
   separated by at least its minimum separation. *)
let test_sporadic_min_separation () =
  let root = Aadl.Instantiate.of_string (Gen.event_driven ()) in
  let tr = Pipeline.translate root in
  let lts = Versa.Lts.build tr.Pipeline.defs tr.Pipeline.system in
  let dispatch_label = Acsr.Label.name (Naming.dispatch_label [ "handler" ]) in
  let is_handler_dispatch (step : Acsr.Step.t) =
    match step with
    | Acsr.Step.Tau (Some l, _) -> Acsr.Label.name l = dispatch_label
    | _ -> false
  in
  (* DFS over the LTS carrying the time since the last handler dispatch
     (capped to avoid unboundedness); visited on (state, capped time) *)
  let minsep = 4 (* quanta: handler Period => 4 ms at 1 ms quantum *) in
  let cap = minsep + 1 in
  let visited = Hashtbl.create 1024 in
  let violations = ref 0 in
  let rec dfs state since =
    let key = (state, since) in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key ();
      Array.iter
        (fun (step, target) ->
          if is_handler_dispatch step then begin
            if since < minsep then incr violations;
            dfs target 0
          end
          else if Acsr.Step.is_timed step then
            dfs target (min cap (since + 1))
          else dfs target since)
        (Versa.Lts.successors lts state)
    end
  in
  dfs (Versa.Lts.initial lts) cap;
  Alcotest.(check int) "no dispatch before the minimum separation" 0
    !violations

(* Urgency arbitrates between two ready queues: the dispatcher consumes
   the higher-urgency connection first. *)
let test_urgency_arbitration () =
  let text =
    {|
processor cpu
properties
  Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
end cpu;
device src_a
features
  p: out event port;
properties
  Period => 8 ms;
end src_a;
device src_b
features
  p: out event port;
properties
  Period => 8 ms;
end src_b;
thread worker
features
  hi: in event port { Urgency => 5; };
  lo: in event port { Urgency => 2; };
properties
  Dispatch_Protocol => Aperiodic;
  Compute_Execution_Time => 1 ms;
  Compute_Deadline => 8 ms;
end worker;
system s
end s;
system implementation s.impl
subcomponents
  cpu1: processor cpu;
  a: device src_a;
  b: device src_b;
  w: thread worker;
connections
  c1: port a.p -> w.hi { Urgency => 5; };
  c2: port b.p -> w.lo { Urgency => 2; };
properties
  Actual_Processor_Binding => reference (cpu1) applies to w;
end s.impl;
|}
  in
  let root = Aadl.Instantiate.of_string text in
  let tr = Pipeline.translate root in
  let lts = Versa.Lts.build tr.Pipeline.defs tr.Pipeline.system in
  (* find a state where both dequeue taus are enabled: the low-urgency one
     must be preempted (absent) whenever the high-urgency one is offered *)
  let deq_prio (step : Acsr.Step.t) =
    match step with
    | Acsr.Step.Tau (Some l, p) ->
        let n = Acsr.Label.name l in
        let has_suffix suffix =
          let ls = String.length suffix and ln = String.length n in
          ln >= ls && String.sub n (ln - ls) ls = suffix
        in
        if has_suffix "_hi_deq" then Some (`Hi, p)
        else if has_suffix "_lo_deq" then Some (`Lo, p)
        else None
    | _ -> None
  in
  let saw_hi = ref false and coexistence = ref 0 in
  for s = 0 to Versa.Lts.num_states lts - 1 do
    let steps =
      Array.to_list (Versa.Lts.successors lts s)
      |> List.filter_map (fun (st, _) -> deq_prio st)
    in
    let his = List.filter (fun (k, _) -> k = `Hi) steps in
    let los = List.filter (fun (k, _) -> k = `Lo) steps in
    if his <> [] then saw_hi := true;
    if his <> [] && los <> [] then incr coexistence
  done;
  Alcotest.(check bool) "high-urgency dequeues occur" true !saw_hi;
  Alcotest.(check int)
    "low urgency never offered alongside high urgency" 0 !coexistence

(* {1 Whole-model translation} *)

let test_cruise_control_counts () =
  (* The paper (Section 4.1): "the translation produces six ACSR processes
     that represent threads and six ACSR processes that represent
     dispatchers ... no queue processes are introduced." *)
  let root = Aadl.Instantiate.of_string (Gen.cruise_control ()) in
  let tr = Pipeline.translate root in
  Alcotest.(check int) "six thread processes" 6 tr.Pipeline.num_thread_processes;
  Alcotest.(check int) "six dispatchers" 6 tr.Pipeline.num_dispatchers;
  Alcotest.(check int) "no queues" 0 tr.Pipeline.num_queues;
  Alcotest.(check int) "no stimuli" 0 tr.Pipeline.num_stimuli

let test_event_driven_counts () =
  let root = Aadl.Instantiate.of_string (Gen.event_driven ()) in
  let tr = Pipeline.translate root in
  Alcotest.(check int) "three thread processes" 3 tr.Pipeline.num_thread_processes;
  Alcotest.(check int) "two queues" 2 tr.Pipeline.num_queues;
  Alcotest.(check int) "one stimulus" 1 tr.Pipeline.num_stimuli

let test_translation_closed () =
  let root = Aadl.Instantiate.of_string (Gen.cruise_control ()) in
  let tr = Pipeline.translate root in
  Alcotest.(check bool) "system term is closed" true
    (Acsr.Proc.is_ground tr.Pipeline.system);
  (* every definition must be registered and instantiable *)
  Acsr.Defs.fold
    (fun d () ->
      Alcotest.(check bool)
        (d.Acsr.Defs.name ^ " instantiable") true
        (try
           ignore
             (Acsr.Defs.instantiate tr.Pipeline.defs d.Acsr.Defs.name
                (List.map (fun _ -> 0) d.Acsr.Defs.formals));
           true
         with _ -> false))
    tr.Pipeline.defs ()

let test_untranslatable_rejected () =
  let text = "processor cpu\nend cpu;\nsystem s\nend s;\nsystem implementation s.impl\nsubcomponents\n  cpu1: processor cpu;\nend s.impl;" in
  let root = Aadl.Instantiate.of_string text in
  Alcotest.(check bool) "no threads -> Error" true
    (try
       ignore (Pipeline.translate root);
       false
     with Pipeline.Error _ -> true)

let test_force_protocol_changes_priorities () =
  let root = Aadl.Instantiate.of_string crossover in
  let rm = Pipeline.translate root in
  let edf =
    Pipeline.translate
      ~options:
        {
          Pipeline.default_options with
          force_protocol = Some Aadl.Props.Edf;
        }
      root
  in
  let static_only tr =
    List.for_all
      (fun (a : Sched_policy.assignment) ->
        match a.Sched_policy.cpu_priority with
        | Acsr.Expr.Int _ -> true
        | _ -> false)
      (List.concat_map snd tr.Pipeline.assignments)
  in
  Alcotest.(check bool) "RM static" true (static_only rm);
  Alcotest.(check bool) "EDF dynamic" false (static_only edf)

let () =
  Alcotest.run "translate"
    [
      ( "workload",
        [
          Alcotest.test_case "basic" `Quick test_workload_basic;
          Alcotest.test_case "rounding" `Quick test_workload_rounding;
          Alcotest.test_case "infeasible rejected" `Quick
            test_workload_rejects_infeasible;
          Alcotest.test_case "utilization" `Quick test_workload_utilization;
          Alcotest.test_case "suggest quantum" `Quick test_suggest_quantum;
        ] );
      ( "policy",
        [
          Alcotest.test_case "rm ordering" `Quick test_rm_ordering;
          Alcotest.test_case "dm ordering" `Quick test_dm_ordering;
          Alcotest.test_case "distinct statics" `Quick
            test_static_priorities_distinct;
          Alcotest.test_case "edf expression" `Quick test_edf_expression;
          Alcotest.test_case "llf expression" `Quick test_llf_expression;
        ] );
      ( "hierarchical",
        [
          Alcotest.test_case "priority banding" `Quick
            test_hierarchical_banding;
          Alcotest.test_case "verdicts" `Quick test_hierarchical_verdicts;
          Alcotest.test_case "local bounds" `Quick test_local_bounds;
          Alcotest.test_case "flat assign rejects" `Quick
            test_flat_assign_rejects_hierarchical;
        ] );
      ( "skeleton",
        [
          Alcotest.test_case "defs" `Quick test_skeleton_defs;
          Alcotest.test_case "compute params" `Quick
            test_skeleton_compute_params;
          Alcotest.test_case "behaviour" `Quick test_skeleton_behaviour;
          Alcotest.test_case "nondeterministic cet" `Quick
            test_skeleton_nondeterministic_cet;
        ] );
      ( "dispatcher semantics",
        [
          Alcotest.test_case "sporadic min separation" `Quick
            test_sporadic_min_separation;
          Alcotest.test_case "urgency arbitration" `Quick
            test_urgency_arbitration;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "cruise control counts (paper 4.1)" `Quick
            test_cruise_control_counts;
          Alcotest.test_case "event driven counts" `Quick
            test_event_driven_counts;
          Alcotest.test_case "translation closed" `Quick
            test_translation_closed;
          Alcotest.test_case "untranslatable rejected" `Quick
            test_untranslatable_rejected;
          Alcotest.test_case "force protocol" `Quick
            test_force_protocol_changes_priorities;
        ] );
    ]
