(* Tests for the AADL frontend: lexing, parsing, property access,
   instantiation with property precedence, semantic connection resolution
   across the containment hierarchy, bindings and legality checks. *)

let lc = String.lowercase_ascii

(* Substring test without extra dependencies. *)
module Astring_contains = struct
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
end

(* A two-subsystem model exercising multi-level semantic connections and
   contained property bindings, shaped like the paper's Fig. 1. *)
let mini_system =
  {|
processor cpu
properties
  Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
end cpu;

bus vme
end vme;

thread sensor
features
  outp: out data port;
properties
  Dispatch_Protocol => Periodic;
  Period => 10 ms;
  Compute_Execution_Time => 2 ms .. 3 ms;
  Compute_Deadline => 10 ms;
end sensor;

thread controller
features
  inp: in data port;
properties
  Dispatch_Protocol => Periodic;
  Period => 20 ms;
  Compute_Execution_Time => 5 ms;
  Compute_Deadline => 20 ms;
  Priority => 7;
end controller;

thread implementation sensor.impl
end sensor.impl;

thread implementation controller.impl
end controller.impl;

process sense_proc
features
  data_out: out data port;
end sense_proc;

process implementation sense_proc.impl
subcomponents
  s1: thread sensor.impl;
connections
  c1: port s1.outp -> data_out;
end sense_proc.impl;

process control_proc
features
  data_in: in data port;
end control_proc;

process implementation control_proc.impl
subcomponents
  t1: thread controller.impl;
connections
  c2: port data_in -> t1.inp;
end control_proc.impl;

system root
end root;

system implementation root.impl
subcomponents
  cpu1: processor cpu;
  b1: bus vme;
  sp: process sense_proc.impl;
  cp: process control_proc.impl;
connections
  c0: port sp.data_out -> cp.data_in { Actual_Connection_Binding => reference (b1); };
properties
  Actual_Processor_Binding => reference (cpu1) applies to sp.s1;
  Actual_Processor_Binding => reference (cpu1) applies to cp.t1;
end root.impl;
|}

let instance () = Aadl.Instantiate.of_string mini_system

(* {1 Lexer} *)

let test_lexer_tokens () =
  let toks = List.map fst (Aadl.Lexer.tokenize "a.b -> c_1 { X => 5 ms; } -- zap\n;") in
  Alcotest.(check int) "token count" 14 (List.length toks);
  (match toks with
  | Aadl.Lexer.IDENT "a" :: Aadl.Lexer.DOT :: Aadl.Lexer.IDENT "b"
    :: Aadl.Lexer.ARROW :: _ ->
      ()
  | _ -> Alcotest.fail "unexpected token stream");
  Alcotest.(check bool) "comment swallowed" true
    (not
       (List.exists
          (function Aadl.Lexer.IDENT s -> lc s = "zap" | _ -> false)
          toks))

let test_lexer_dotdot_vs_real () =
  match List.map fst (Aadl.Lexer.tokenize "1 .. 2 3.5 4..5") with
  | [
   Aadl.Lexer.INT 1;
   Aadl.Lexer.DOTDOT;
   Aadl.Lexer.INT 2;
   Aadl.Lexer.REAL f;
   Aadl.Lexer.INT 4;
   Aadl.Lexer.DOTDOT;
   Aadl.Lexer.INT 5;
   Aadl.Lexer.EOF;
  ] ->
      Alcotest.(check (float 1e-9)) "real" 3.5 f
  | _ -> Alcotest.fail "unexpected tokens for ranges and reals"

let test_lexer_string_and_arrows () =
  match List.map fst (Aadl.Lexer.tokenize {|"hi" <-> => +=>|}) with
  | [
   Aadl.Lexer.STRING "hi";
   Aadl.Lexer.BIARROW;
   Aadl.Lexer.DARROW;
   Aadl.Lexer.PLUSDARROW;
   Aadl.Lexer.EOF;
  ] ->
      ()
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_error_position () =
  try
    ignore (Aadl.Lexer.tokenize "ab\n  @");
    Alcotest.fail "expected lexer error"
  with Aadl.Lexer.Error (_, loc) ->
    Alcotest.(check int) "line" 2 loc.Aadl.Ast.line;
    Alcotest.(check int) "col" 3 loc.Aadl.Ast.col

(* {1 Parser} *)

let test_parse_model_decl_count () =
  let m = Aadl.Parser.parse_string mini_system in
  Alcotest.(check int) "twelve declarations" 12 (List.length m.Aadl.Ast.decls)

let test_parse_thread_type () =
  let m = Aadl.Parser.parse_string mini_system in
  let sensor =
    List.find_map
      (function
        | Aadl.Ast.Type_decl t when t.Aadl.Ast.ct_name = "sensor" -> Some t
        | _ -> None)
      m.Aadl.Ast.decls
  in
  match sensor with
  | None -> Alcotest.fail "sensor type not found"
  | Some t ->
      Alcotest.(check int) "one feature" 1 (List.length t.Aadl.Ast.ct_features);
      Alcotest.(check int) "four properties" 4 (List.length t.Aadl.Ast.ct_props);
      let f = List.hd t.Aadl.Ast.ct_features in
      (match f.Aadl.Ast.fkind with
      | Aadl.Ast.Port (Aadl.Ast.Out, Aadl.Ast.Data_port, None) -> ()
      | _ -> Alcotest.fail "expected out data port")

let test_parse_time_and_range () =
  let m = Aadl.Parser.parse_string mini_system in
  let sensor =
    List.find_map
      (function
        | Aadl.Ast.Type_decl t when t.Aadl.Ast.ct_name = "sensor" -> Some t
        | _ -> None)
      m.Aadl.Ast.decls
    |> Option.get
  in
  (match Aadl.Props.period sensor.Aadl.Ast.ct_props with
  | Some t -> Alcotest.(check int) "period 10ms in ns" 10_000_000 (Aadl.Time.to_ns t)
  | None -> Alcotest.fail "period missing");
  match Aadl.Props.compute_execution_time sensor.Aadl.Ast.ct_props with
  | Some (lo, hi) ->
      Alcotest.(check int) "cet lo" 2_000_000 (Aadl.Time.to_ns lo);
      Alcotest.(check int) "cet hi" 3_000_000 (Aadl.Time.to_ns hi)
  | None -> Alcotest.fail "cet missing"

let test_parse_applies_to () =
  let m = Aadl.Parser.parse_string mini_system in
  let root_impl =
    List.find_map
      (function
        | Aadl.Ast.Impl_decl i when Aadl.Ast.impl_full_name i = "root.impl" ->
            Some i
        | _ -> None)
      m.Aadl.Ast.decls
    |> Option.get
  in
  Alcotest.(check int) "two contained props" 2
    (List.length root_impl.Aadl.Ast.ci_props);
  let p = List.hd root_impl.Aadl.Ast.ci_props in
  Alcotest.(check (list (list string))) "applies to path" [ [ "sp"; "s1" ] ]
    p.Aadl.Ast.applies_to

let test_parse_error_reports_location () =
  try
    ignore (Aadl.Parser.parse_string "thread t\nfeatures\n  bogus\nend t;");
    Alcotest.fail "expected parse error"
  with Aadl.Parser.Error (_, loc) ->
    Alcotest.(check bool) "error on line >= 3" true (loc.Aadl.Ast.line >= 3)

let test_parse_end_name_mismatch () =
  try
    ignore (Aadl.Parser.parse_string "thread t\nend u;");
    Alcotest.fail "expected mismatch error"
  with Aadl.Parser.Error (msg, _) ->
    Alcotest.(check bool) "mentions mismatch" true
      (Astring_contains.contains msg "does not match")

(* {1 Instantiation} *)

let test_instance_tree_shape () =
  let root = instance () in
  Alcotest.(check int) "four children" 4 (List.length root.Aadl.Instance.children);
  Alcotest.(check int) "two threads" 2
    (List.length (Aadl.Instance.threads root));
  Alcotest.(check int) "one processor" 1
    (List.length (Aadl.Instance.processors root));
  Alcotest.(check int) "one bus" 1 (List.length (Aadl.Instance.buses root));
  match Aadl.Instance.find root [ "sp"; "s1" ] with
  | Some th ->
      Alcotest.(check bool) "is a thread" true
        (th.Aadl.Instance.category = Aadl.Ast.Thread)
  | None -> Alcotest.fail "sp.s1 not found"

let test_contained_property_delivery () =
  let root = instance () in
  let th = Aadl.Instance.find_exn root [ "sp"; "s1" ] in
  match Aadl.Props.actual_processor_binding th.Aadl.Instance.props with
  | Some [ "cpu1" ] -> ()
  | Some p -> Alcotest.fail ("wrong binding path: " ^ String.concat "." p)
  | None -> Alcotest.fail "binding not delivered to thread instance"

let test_property_precedence () =
  (* A subcomponent association must override the type association. *)
  let text =
    {|
thread t
properties
  Priority => 1;
end t;
thread implementation t.impl
end t.impl;
processor cpu
properties
  Scheduling_Protocol => HPF_PROTOCOL;
end cpu;
system s
end s;
system implementation s.impl
subcomponents
  th: thread t.impl { Priority => 9; };
  cpu1: processor cpu;
end s.impl;
|}
  in
  let root = Aadl.Instantiate.of_string text in
  let th = Aadl.Instance.find_exn root [ "th" ] in
  Alcotest.(check (option int)) "subcomponent wins" (Some 9)
    (Aadl.Props.priority th.Aadl.Instance.props)

let test_unknown_classifier_rejected () =
  let text =
    {|
system s
end s;
system implementation s.impl
subcomponents
  x: thread nothere;
end s.impl;
|}
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Aadl.Instantiate.of_string text);
       false
     with Aadl.Instantiate.Error _ -> true)

let test_category_mismatch_rejected () =
  let text =
    {|
thread t
end t;
system s
end s;
system implementation s.impl
subcomponents
  x: processor t;
end s.impl;
|}
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Aadl.Instantiate.of_string text);
       false
     with Aadl.Instantiate.Error _ -> true)

(* {1 Time} *)

let test_time_units () =
  Alcotest.(check int) "us" 1_000 (Aadl.Time.to_ns (Aadl.Time.make 1 Aadl.Time.Us));
  Alcotest.(check int) "sec" 2_000_000_000
    (Aadl.Time.to_ns (Aadl.Time.make 2 Aadl.Time.Sec));
  Alcotest.(check int) "min" 60_000_000_000
    (Aadl.Time.to_ns (Aadl.Time.make 1 Aadl.Time.Min));
  Alcotest.(check int) "ps rounds exactly" 3
    (Aadl.Time.to_ns (Aadl.Time.make 3000 Aadl.Time.Ps));
  Alcotest.check_raises "subnanosecond ps"
    (Aadl.Time.Subnanosecond "1500 ps") (fun () ->
      ignore (Aadl.Time.make 1500 Aadl.Time.Ps))

let test_time_quanta () =
  let quantum = Aadl.Time.of_ms 2 in
  Alcotest.(check int) "ceil 3ms/2ms" 2
    (Aadl.Time.to_quanta ~quantum (Aadl.Time.of_ms 3));
  Alcotest.(check int) "floor 3ms/2ms" 1
    (Aadl.Time.to_quanta_floor ~quantum (Aadl.Time.of_ms 3));
  Alcotest.(check int) "exact multiple" 2
    (Aadl.Time.to_quanta ~quantum (Aadl.Time.of_ms 4))

let test_time_unit_names () =
  List.iter
    (fun u ->
      match Aadl.Time.unit_of_string (Aadl.Time.unit_to_string u) with
      | Some u' -> Alcotest.(check bool) "unit round-trip" true (u = u')
      | None -> Alcotest.fail "unit name not recognized")
    Aadl.Time.[ Ps; Ns; Us; Ms; Sec; Min; Hr ]

(* {1 Reference resolution} *)

let test_resolve_reference_scoping () =
  (* a reference resolves innermost-first: from sp.s1, "s1" finds the
     sibling-level name before any outer one *)
  let root = instance () in
  (match
     Aadl.Instance.resolve_reference ~root ~from:[ "sp"; "s1" ] [ "s1" ]
   with
  | Some i ->
      Alcotest.(check (list string)) "inner s1" [ "sp"; "s1" ]
        i.Aadl.Instance.path
  | None -> Alcotest.fail "s1 should resolve");
  (match Aadl.Instance.resolve_reference ~root ~from:[ "sp"; "s1" ] [ "cpu1" ] with
  | Some i ->
      Alcotest.(check (list string)) "outer cpu1" [ "cpu1" ] i.Aadl.Instance.path
  | None -> Alcotest.fail "cpu1 should resolve from inner scope");
  Alcotest.(check bool) "unknown stays unresolved" true
    (Aadl.Instance.resolve_reference ~root ~from:[ "sp" ] [ "ghost" ] = None)

(* {1 Semantic connections} *)

let test_semconn_resolution () =
  let root = instance () in
  let sconns = Aadl.Semconn.resolve root in
  match sconns with
  | [ sc ] ->
      Alcotest.(check (list string)) "ultimate source" [ "sp"; "s1" ]
        sc.Aadl.Semconn.src.Aadl.Semconn.inst;
      Alcotest.(check (list string)) "ultimate destination" [ "cp"; "t1" ]
        sc.Aadl.Semconn.dst.Aadl.Semconn.inst;
      Alcotest.(check int) "three syntactic links" 3
        (List.length sc.Aadl.Semconn.links);
      Alcotest.(check bool) "data connection" true
        (not (Aadl.Semconn.is_event_like sc))
  | l -> Alcotest.fail (Fmt.str "expected one semantic connection, got %d" (List.length l))

let test_semconn_bus_binding () =
  let root = instance () in
  let sconns = Aadl.Semconn.resolve root in
  let sc = List.hd sconns in
  match Aadl.Binding.bus_of ~root sc with
  | Some bus ->
      Alcotest.(check (list string)) "bound to b1" [ "b1" ]
        bus.Aadl.Instance.path
  | None -> Alcotest.fail "connection not bound to a bus"

let test_processor_binding () =
  let root = instance () in
  let by_proc = Aadl.Binding.threads_by_processor ~root in
  match by_proc with
  | [ (proc, bound) ] ->
      Alcotest.(check (list string)) "cpu1" [ "cpu1" ] proc.Aadl.Instance.path;
      Alcotest.(check int) "two bound threads" 2 (List.length bound)
  | _ -> Alcotest.fail "expected one processor group"

(* {1 Checks} *)

let test_check_ok_model () =
  let root = instance () in
  let diags = Aadl.Check.run root in
  Alcotest.(check bool) "no errors" true (Aadl.Check.is_ok diags)

let test_check_missing_properties () =
  let text =
    {|
thread t
end t;
processor cpu
end cpu;
system s
end s;
system implementation s.impl
subcomponents
  th: thread t;
  cpu1: processor cpu;
properties
  Actual_Processor_Binding => reference (cpu1) applies to th;
end s.impl;
|}
  in
  let root = Aadl.Instantiate.of_string text in
  let errs = Aadl.Check.errors (Aadl.Check.run root) in
  (* missing Dispatch_Protocol, Compute_Execution_Time, Compute_Deadline,
     Scheduling_Protocol *)
  Alcotest.(check int) "four errors" 4 (List.length errs)

let test_check_unbound_thread () =
  let text =
    {|
thread t
properties
  Dispatch_Protocol => Periodic;
  Period => 10 ms;
  Compute_Execution_Time => 1 ms;
  Compute_Deadline => 10 ms;
end t;
processor cpu
properties
  Scheduling_Protocol => EDF_PROTOCOL;
end cpu;
system s
end s;
system implementation s.impl
subcomponents
  th: thread t;
  cpu1: processor cpu;
end s.impl;
|}
  in
  let root = Aadl.Instantiate.of_string text in
  let errs = Aadl.Check.errors (Aadl.Check.run root) in
  Alcotest.(check bool) "reports unbound thread" true
    (List.exists
       (fun d -> d.Aadl.Check.subject = [ "th" ])
       errs)

let test_check_aperiodic_needs_connection () =
  let text =
    {|
thread t
features
  trig: in event port;
properties
  Dispatch_Protocol => Aperiodic;
  Compute_Execution_Time => 1 ms;
  Compute_Deadline => 10 ms;
end t;
processor cpu
properties
  Scheduling_Protocol => EDF_PROTOCOL;
end cpu;
system s
end s;
system implementation s.impl
subcomponents
  th: thread t;
  cpu1: processor cpu;
properties
  Actual_Processor_Binding => reference (cpu1) applies to th;
end s.impl;
|}
  in
  let root = Aadl.Instantiate.of_string text in
  let errs = Aadl.Check.errors (Aadl.Check.run root) in
  Alcotest.(check bool) "reports dangling event port" true
    (List.exists
       (fun d ->
         d.Aadl.Check.subject = [ "th" ]
         && Astring_contains.contains d.Aadl.Check.message "trig")
       errs)

let test_check_duplicate_subcomponent () =
  let text =
    {|
processor cpu
properties
  Scheduling_Protocol => EDF_PROTOCOL;
end cpu;
thread t
properties
  Dispatch_Protocol => Periodic;
  Period => 10 ms;
  Compute_Execution_Time => 1 ms;
  Compute_Deadline => 10 ms;
end t;
system s
end s;
system implementation s.impl
subcomponents
  th: thread t;
  th: thread t;
  cpu1: processor cpu;
properties
  Actual_Processor_Binding => reference (cpu1) applies to th;
end s.impl;
|}
  in
  let root = Aadl.Instantiate.of_string text in
  let errs = Aadl.Check.errors (Aadl.Check.run root) in
  Alcotest.(check bool) "duplicate reported" true
    (List.exists
       (fun d -> Astring_contains.contains d.Aadl.Check.message "duplicate subcomponent")
       errs)

let test_check_dangling_connection () =
  let text =
    {|
processor cpu
properties
  Scheduling_Protocol => EDF_PROTOCOL;
end cpu;
thread t
features
  outp: out data port;
properties
  Dispatch_Protocol => Periodic;
  Period => 10 ms;
  Compute_Execution_Time => 1 ms;
  Compute_Deadline => 10 ms;
end t;
system s
end s;
system implementation s.impl
subcomponents
  th: thread t;
  cpu1: processor cpu;
connections
  c1: port th.outp -> nowhere.inp;
properties
  Actual_Processor_Binding => reference (cpu1) applies to th;
end s.impl;
|}
  in
  let root = Aadl.Instantiate.of_string text in
  let errs = Aadl.Check.errors (Aadl.Check.run root) in
  Alcotest.(check bool) "dangling destination reported" true
    (List.exists
       (fun d -> Astring_contains.contains d.Aadl.Check.message "does not resolve")
       errs)

let test_check_bad_mode_references () =
  let text =
    {|
processor cpu
properties
  Scheduling_Protocol => EDF_PROTOCOL;
end cpu;
thread t
properties
  Dispatch_Protocol => Periodic;
  Period => 10 ms;
  Compute_Execution_Time => 1 ms;
  Compute_Deadline => 10 ms;
end t;
system s
end s;
system implementation s.impl
subcomponents
  th: thread t in modes (ghost);
  cpu1: processor cpu;
modes
  m1: initial mode;
  m1 -[ th.nope ]-> m2;
properties
  Actual_Processor_Binding => reference (cpu1) applies to th;
end s.impl;
|}
  in
  let root = Aadl.Instantiate.of_string text in
  let errs = Aadl.Check.errors (Aadl.Check.run root) in
  Alcotest.(check bool) "undeclared in-modes reported" true
    (List.exists
       (fun d -> Astring_contains.contains d.Aadl.Check.message "undeclared mode")
       errs);
  Alcotest.(check bool) "unknown transition target reported" true
    (List.exists
       (fun d -> Astring_contains.contains d.Aadl.Check.message "unknown mode m2")
       errs)

(* {1 Robustness: mutated inputs never crash the frontend} *)

let test_parser_fuzz_robustness () =
  let base = mini_system in
  let st = Random.State.make [| 7 |] in
  let mutate s =
    let b = Bytes.of_string s in
    let n_muts = 1 + Random.State.int st 5 in
    for _ = 1 to n_muts do
      let i = Random.State.int st (Bytes.length b) in
      let c = Char.chr (32 + Random.State.int st 95) in
      Bytes.set b i c
    done;
    Bytes.to_string b
  in
  for _ = 1 to 500 do
    let input = mutate base in
    match Aadl.Instantiate.of_string input with
    | _ -> ()
    | exception Aadl.Lexer.Error _
    | exception Aadl.Parser.Error _
    | exception Aadl.Instantiate.Error _
    | exception Aadl.Decls.Duplicate_declaration _
    | exception Aadl.Time.Subnanosecond _ ->
        ()
    (* any other exception is a crash *)
  done

let test_acsr_parser_fuzz_robustness () =
  let base =
    "Simple = {(cpu,1)} : {(cpu,1),(bus,1)} : done! . Simple;\nsystem = Simple;"
  in
  let st = Random.State.make [| 11 |] in
  let mutate s =
    let b = Bytes.of_string s in
    for _ = 1 to 1 + Random.State.int st 4 do
      let i = Random.State.int st (Bytes.length b) in
      Bytes.set b i (Char.chr (32 + Random.State.int st 95))
    done;
    Bytes.to_string b
  in
  for _ = 1 to 500 do
    let input = mutate base in
    match Acsr.Syntax.parse_string input with
    | _ -> ()
    | exception Acsr.Syntax.Parse_error _ -> ()
  done

let () =
  Alcotest.run "aadl"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "dotdot vs real" `Quick test_lexer_dotdot_vs_real;
          Alcotest.test_case "strings and arrows" `Quick
            test_lexer_string_and_arrows;
          Alcotest.test_case "error position" `Quick test_lexer_error_position;
        ] );
      ( "parser",
        [
          Alcotest.test_case "decl count" `Quick test_parse_model_decl_count;
          Alcotest.test_case "thread type" `Quick test_parse_thread_type;
          Alcotest.test_case "time and range" `Quick test_parse_time_and_range;
          Alcotest.test_case "applies to" `Quick test_parse_applies_to;
          Alcotest.test_case "error location" `Quick
            test_parse_error_reports_location;
          Alcotest.test_case "end name mismatch" `Quick
            test_parse_end_name_mismatch;
        ] );
      ( "instance",
        [
          Alcotest.test_case "tree shape" `Quick test_instance_tree_shape;
          Alcotest.test_case "contained property delivery" `Quick
            test_contained_property_delivery;
          Alcotest.test_case "property precedence" `Quick
            test_property_precedence;
          Alcotest.test_case "unknown classifier" `Quick
            test_unknown_classifier_rejected;
          Alcotest.test_case "category mismatch" `Quick
            test_category_mismatch_rejected;
        ] );
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "quanta" `Quick test_time_quanta;
          Alcotest.test_case "unit names" `Quick test_time_unit_names;
        ] );
      ( "references",
        [
          Alcotest.test_case "scoping" `Quick test_resolve_reference_scoping;
        ] );
      ( "semconn",
        [
          Alcotest.test_case "resolution" `Quick test_semconn_resolution;
          Alcotest.test_case "bus binding" `Quick test_semconn_bus_binding;
          Alcotest.test_case "processor binding" `Quick test_processor_binding;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "aadl frontend total" `Quick
            test_parser_fuzz_robustness;
          Alcotest.test_case "acsr parser total" `Quick
            test_acsr_parser_fuzz_robustness;
        ] );
      ( "check",
        [
          Alcotest.test_case "ok model" `Quick test_check_ok_model;
          Alcotest.test_case "missing properties" `Quick
            test_check_missing_properties;
          Alcotest.test_case "unbound thread" `Quick test_check_unbound_thread;
          Alcotest.test_case "aperiodic needs connection" `Quick
            test_check_aperiodic_needs_connection;
          Alcotest.test_case "duplicate subcomponent" `Quick
            test_check_duplicate_subcomponent;
          Alcotest.test_case "dangling connection" `Quick
            test_check_dangling_connection;
          Alcotest.test_case "bad mode references" `Quick
            test_check_bad_mode_references;
        ] );
    ]
