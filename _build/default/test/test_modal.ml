(* Tests for the mode-support extension: parsing of modes, transitions and
   [in modes] clauses; activity analysis; the generated mode manager; and
   end-to-end schedulability of multi-modal systems. *)

let instance ?degraded_cet_ms () =
  Aadl.Instantiate.of_string (Gen.modal_system ?degraded_cet_ms ())

let analyze text =
  Analysis.Schedulability.analyze (Aadl.Instantiate.of_string text)

(* {1 Parsing} *)

let test_parse_modes () =
  let root = instance () in
  Alcotest.(check int) "two modes" 2 (List.length root.Aadl.Instance.modes);
  Alcotest.(check (option string)) "initial mode" (Some "nominal")
    (Aadl.Instance.initial_mode root);
  Alcotest.(check int) "two transitions" 2
    (List.length root.Aadl.Instance.transitions);
  let tr = List.hd root.Aadl.Instance.transitions in
  Alcotest.(check string) "src" "nominal" tr.Aadl.Ast.mt_src;
  Alcotest.(check string) "dst" "degraded" tr.Aadl.Ast.mt_dst;
  (match tr.Aadl.Ast.mt_triggers with
  | [ { Aadl.Ast.ce_sub = Some "ctl"; ce_feature = "alarm" } ] -> ()
  | _ -> Alcotest.fail "unexpected trigger")

let test_parse_in_modes () =
  let root = instance () in
  let wn = Aadl.Instance.find_exn root [ "wn" ] in
  let ctl = Aadl.Instance.find_exn root [ "ctl" ] in
  Alcotest.(check (list string)) "wn in nominal" [ "nominal" ]
    wn.Aadl.Instance.in_modes;
  Alcotest.(check (list string)) "ctl in all modes" []
    ctl.Aadl.Instance.in_modes

(* {1 Activity analysis} *)

let modal_of root =
  Translate.Modal.analyze ~root ~quantum:(Aadl.Time.of_ms 1)
    (Option.get (Translate.Modal.find root))

let test_activity () =
  let root = instance () in
  let m = modal_of root in
  Alcotest.(check bool) "wn active in nominal" true
    (Translate.Modal.active_in m ~mode:"nominal" ~thread:[ "wn" ]);
  Alcotest.(check bool) "wn inactive in degraded" false
    (Translate.Modal.active_in m ~mode:"degraded" ~thread:[ "wn" ]);
  Alcotest.(check bool) "ctl active everywhere" true
    (Translate.Modal.active_in m ~mode:"degraded" ~thread:[ "ctl" ]);
  Alcotest.(check bool) "wn initially active" true
    (Translate.Modal.initially_active m ~thread:[ "wn" ]);
  Alcotest.(check bool) "wd initially inactive" false
    (Translate.Modal.initially_active m ~thread:[ "wd" ]);
  Alcotest.(check int) "two mode-dependent threads" 2
    (List.length (Translate.Modal.restricted_threads m))

let test_internal_triggers () =
  let root = instance () in
  let m = modal_of root in
  Alcotest.(check int) "ctl raises one trigger" 1
    (List.length (Translate.Modal.internal_triggers_of m ~thread:[ "ctl" ]));
  Alcotest.(check int) "wn raises none" 0
    (List.length (Translate.Modal.internal_triggers_of m ~thread:[ "wn" ]))

(* {1 End-to-end schedulability} *)

let test_mode_exclusion_makes_feasible () =
  (* both workers together would overload the processor (2+3+6 = 11 > 10),
     so the verdict is schedulable only if mode exclusion is honored *)
  let root = instance () in
  let wl =
    Translate.Workload.extract ~quantum:(Aadl.Time.of_ms 1) root
  in
  Alcotest.(check bool) "combined utilization above 1" true
    (Translate.Workload.utilization wl.Translate.Workload.tasks > 1.0);
  let r = analyze (Gen.modal_system ()) in
  Alcotest.(check bool) "schedulable thanks to modes" true
    (Analysis.Schedulability.is_schedulable r)

let test_degraded_overload_detected () =
  let r = analyze (Gen.modal_system ~degraded_cet_ms:9 ()) in
  match r.Analysis.Schedulability.verdict with
  | Analysis.Schedulability.Not_schedulable { scenario; _ } ->
      let happenings =
        List.concat_map
          (fun q -> q.Analysis.Raise_trace.happenings)
          scenario.Analysis.Raise_trace.quanta
      in
      Alcotest.(check bool) "scenario contains the mode switch" true
        (List.exists
           (function
             | Analysis.Raise_trace.Mode_transition _ -> true
             | _ -> false)
           happenings);
      Alcotest.(check bool) "wd activated" true
        (List.exists
           (function
             | Analysis.Raise_trace.Activated [ "wd" ] -> true
             | _ -> false)
           happenings);
      Alcotest.(check bool) "wn deactivated" true
        (List.exists
           (function
             | Analysis.Raise_trace.Deactivated [ "wn" ] -> true
             | _ -> false)
           happenings)
  | _ -> Alcotest.fail "expected the degraded-mode overload to be found"

let test_deactivation_waits_for_completion () =
  (* the mode manager delivers deactivation at a dispatch boundary: no
     scenario may deactivate a thread between its dispatch and its
     completion.  We check all reachable violations of the overloaded
     variant respect this for wn. *)
  let root = instance ~degraded_cet_ms:9 () in
  let options =
    { Analysis.Schedulability.default_options with all_violations = true }
  in
  let r = Analysis.Schedulability.analyze ~options root in
  let scenarios = Analysis.Schedulability.all_scenarios r in
  Alcotest.(check bool) "at least one violation" true (scenarios <> []);
  List.iter
    (fun (sc : Analysis.Raise_trace.t) ->
      let running = ref false in
      List.iter
        (fun q ->
          List.iter
            (function
              | Analysis.Raise_trace.Dispatched [ "wn" ] -> running := true
              | Analysis.Raise_trace.Completed [ "wn" ] -> running := false
              | Analysis.Raise_trace.Deactivated [ "wn" ] ->
                  Alcotest.(check bool)
                    "wn not deactivated mid-dispatch" false !running
              | _ -> ())
            q.Analysis.Raise_trace.happenings)
        sc.Analysis.Raise_trace.quanta)
    scenarios

let test_multiple_modal_components_rejected () =
  let text =
    {|
processor cpu
properties
  Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
end cpu;
thread t
properties
  Dispatch_Protocol => Periodic;
  Period => 10 ms;
  Compute_Execution_Time => 1 ms;
  Compute_Deadline => 10 ms;
end t;
system sub
end sub;
system implementation sub.impl
subcomponents
  th: thread t;
modes
  a: initial mode;
  b: mode;
end sub.impl;
system root
end root;
system implementation root.impl
subcomponents
  cpu1: processor cpu;
  s1: system sub.impl;
modes
  x: initial mode;
  y: mode;
properties
  Actual_Processor_Binding => reference (cpu1) applies to s1.th;
end root.impl;
|}
  in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (analyze text);
       false
     with Translate.Pipeline.Error _ -> true)

let test_environment_trigger () =
  (* a transition triggered by the modal component's own port: the
     environment may switch modes at any time; both modes must hold *)
  let text =
    {|
processor cpu
properties
  Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
end cpu;
thread w1
properties
  Dispatch_Protocol => Periodic;
  Period => 10 ms;
  Compute_Execution_Time => 4 ms;
  Compute_Deadline => 10 ms;
end w1;
thread w2
properties
  Dispatch_Protocol => Periodic;
  Period => 10 ms;
  Compute_Execution_Time => 7 ms;
  Compute_Deadline => 10 ms;
end w2;
system root
features
  switch_req: in event port;
end root;
system implementation root.impl
subcomponents
  cpu1: processor cpu;
  a: thread w1 in modes (m1);
  b: thread w2 in modes (m2);
modes
  m1: initial mode;
  m2: mode;
  m1 -[ switch_req ]-> m2;
  m2 -[ switch_req ]-> m1;
properties
  Actual_Processor_Binding => reference (cpu1) applies to a;
  Actual_Processor_Binding => reference (cpu1) applies to b;
end root.impl;
|}
  in
  let r = analyze text in
  Alcotest.(check bool) "both modes feasible under arbitrary switching" true
    (Analysis.Schedulability.is_schedulable r)

let test_translation_counts_unchanged () =
  (* mode support must not change the Algorithm 1 process counts *)
  let root = instance () in
  let tr = Translate.Pipeline.translate root in
  Alcotest.(check int) "three thread processes" 3
    tr.Translate.Pipeline.num_thread_processes;
  Alcotest.(check int) "three dispatchers" 3 tr.Translate.Pipeline.num_dispatchers

let () =
  Alcotest.run "modal"
    [
      ( "parsing",
        [
          Alcotest.test_case "modes and transitions" `Quick test_parse_modes;
          Alcotest.test_case "in modes clauses" `Quick test_parse_in_modes;
        ] );
      ( "activity",
        [
          Alcotest.test_case "active_in" `Quick test_activity;
          Alcotest.test_case "internal triggers" `Quick test_internal_triggers;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "mode exclusion feasible" `Quick
            test_mode_exclusion_makes_feasible;
          Alcotest.test_case "degraded overload" `Quick
            test_degraded_overload_detected;
          Alcotest.test_case "deactivation at boundary" `Quick
            test_deactivation_waits_for_completion;
          Alcotest.test_case "multiple modal rejected" `Quick
            test_multiple_modal_components_rejected;
          Alcotest.test_case "environment trigger" `Quick
            test_environment_trigger;
          Alcotest.test_case "counts unchanged" `Quick
            test_translation_counts_unchanged;
        ] );
    ]
