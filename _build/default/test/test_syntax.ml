(* Tests for the ACSR concrete syntax: parsing of the VERSA-style input
   language, error reporting, and the parse-print round-trip, both on
   hand-written models and on randomly generated terms. *)

open Acsr

let proc_testable = Alcotest.testable Syntax.print_proc Proc.equal

(* {1 Parsing} *)

let test_parse_simple_def () =
  let defs, system =
    Syntax.parse_string
      {|
-- the Simple process of the paper's Fig. 2
Simple = {(cpu,1)} : {(cpu,1),(bus,1)} : done! . Simple;
system = Simple;
|}
  in
  Alcotest.(check (list string)) "one def" [ "Simple" ] (Defs.names defs);
  (match system with
  | Some (Proc.Call ("Simple", [])) -> ()
  | _ -> Alcotest.fail "system entry expected");
  let d = Defs.find defs "Simple" in
  match d.Defs.body with
  | Proc.Act (a1, Proc.Act (a2, Proc.Ev (e, Proc.Call ("Simple", [])))) ->
      Alcotest.(check int) "first action one access" 1
        (List.length (Action.accesses a1));
      Alcotest.(check int) "second action two accesses" 2
        (List.length (Action.accesses a2));
      Alcotest.(check string) "done label" "done"
        (Label.name (Event.label e))
  | _ -> Alcotest.fail "unexpected structure for Simple"

let test_parse_parameterized () =
  let defs, _ =
    Syntax.parse_string
      "Wait(k) = [k < 4] -> {} : Wait(k + 1) + dispatch? . Wait(0);"
  in
  let d = Defs.find defs "Wait" in
  Alcotest.(check (list string)) "formal k" [ "k" ] d.Defs.formals;
  match d.Defs.body with
  | Proc.Choice (Proc.If (Guard.Cmp (Guard.Lt, Expr.Var "k", Expr.Int 4), _), Proc.Ev (_, _)) ->
      ()
  | _ -> Alcotest.fail "unexpected structure for Wait"

let test_parse_restriction_and_par () =
  let p = Syntax.parse_proc_string "(A || B) \\ {a, b}" in
  match p with
  | Proc.Restrict (labels, Proc.Par (Proc.Call ("A", []), Proc.Call ("B", [])))
    ->
      Alcotest.(check int) "two labels" 2 (Label.Set.cardinal labels)
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_scope () =
  let p =
    Syntax.parse_proc_string
      "scope B bound 5 exception e -> H timeout -> T interrupt -> I end"
  in
  match p with
  | Proc.Scope s ->
      Alcotest.(check bool) "bound" true (s.Proc.bound = Some (Expr.Int 5));
      (match s.Proc.exc with
      | Some (l, Proc.Call ("H", [])) ->
          Alcotest.(check string) "exc label" "e" (Label.name l)
      | _ -> Alcotest.fail "bad exception clause");
      (match s.Proc.timeout with
      | Proc.Call ("T", []) -> ()
      | _ -> Alcotest.fail "bad timeout clause");
      (match s.Proc.interrupt with
      | Some (Proc.Call ("I", [])) -> ()
      | _ -> Alcotest.fail "bad interrupt clause")
  | _ -> Alcotest.fail "expected a scope"

let test_parse_close_and_prio_event () =
  let p = Syntax.parse_proc_string "close((a!, 2) . NIL, {cpu})" in
  match p with
  | Proc.Close (rs, Proc.Ev (e, Proc.Nil)) ->
      Alcotest.(check int) "one resource" 1 (Resource.Set.cardinal rs);
      Alcotest.(check bool) "priority 2" true
        (Expr.equal (Event.priority e) (Expr.Int 2))
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_guard_forms () =
  let p =
    Syntax.parse_proc_string
      "[k < 4 && not (e == 0) or true] -> NIL"
  in
  match p with
  | Proc.If (Guard.Or (Guard.And (_, Guard.Not _), Guard.True), Proc.Nil) -> ()
  | Proc.If (g, _) ->
      Alcotest.fail (Fmt.str "unexpected guard %a" Guard.pp g)
  | _ -> Alcotest.fail "expected a guarded process"

let test_parse_paren_event_process () =
  (* '(' NAME '!' can open a parenthesized process too *)
  let p = Syntax.parse_proc_string "(a! . NIL) || B" in
  match p with
  | Proc.Par (Proc.Ev (_, Proc.Nil), Proc.Call ("B", [])) -> ()
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_error_line () =
  try
    ignore (Syntax.parse_string "X = NIL;\nY = {(cpu,} : NIL;");
    Alcotest.fail "expected parse error"
  with Syntax.Parse_error (_, l) -> Alcotest.(check int) "line 2" 2 l

let test_parse_duplicate_def () =
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (Syntax.parse_string "X = NIL; X = NIL;");
       false
     with Syntax.Parse_error _ -> true)

(* {1 Round-trips on reference models} *)

let test_roundtrip_fig2 () =
  let d = Defs.find Gen.Paper_figs.fig2a_defs "Simple" in
  let printed = Syntax.proc_to_string d.Defs.body in
  Alcotest.check proc_testable "fig2a body" d.Defs.body
    (Syntax.parse_proc_string printed);
  (* the whole Fig. 3 composition, scopes included *)
  let printed3 = Syntax.proc_to_string Gen.Paper_figs.fig3_system in
  Alcotest.check proc_testable "fig3 system" Gen.Paper_figs.fig3_system
    (Syntax.parse_proc_string printed3)

let test_roundtrip_translated_model () =
  (* the generated cruise-control ACSR model must round-trip through the
     concrete syntax *)
  let root = Aadl.Instantiate.of_string (Gen.cruise_control ()) in
  let tr = Translate.Pipeline.translate root in
  let text =
    Syntax.to_string ~system:tr.Translate.Pipeline.system
      tr.Translate.Pipeline.defs
  in
  let defs', system' = Syntax.parse_string text in
  Alcotest.(check int) "same number of defs"
    (List.length (Defs.names tr.Translate.Pipeline.defs))
    (List.length (Defs.names defs'));
  (match system' with
  | Some s ->
      Alcotest.check proc_testable "system round-trips"
        tr.Translate.Pipeline.system s
  | None -> Alcotest.fail "system entry lost");
  Defs.fold
    (fun d () ->
      let d' = Defs.find defs' d.Defs.name in
      Alcotest.check proc_testable (d.Defs.name ^ " body") d.Defs.body
        d'.Defs.body)
    tr.Translate.Pipeline.defs ()

(* {1 Random round-trips} *)

let gen_expr =
  QCheck2.Gen.(
    sized_size (int_range 0 3) @@ fix (fun self n ->
        if n = 0 then
          oneof [ map (fun i -> Expr.Int i) (int_range (-5) 20); oneofl [ Expr.Var "e"; Expr.Var "t" ] ]
        else
          let sub = self (n / 2) in
          oneof
            [
              map (fun i -> Expr.Int i) (int_range (-5) 20);
              map2 (fun a b -> Expr.Add (a, b)) sub sub;
              map2 (fun a b -> Expr.Sub (a, b)) sub sub;
              map2 (fun a b -> Expr.Mul (a, b)) sub sub;
              map2 (fun a b -> Expr.Min (a, b)) sub sub;
              map2 (fun a b -> Expr.Max (a, b)) sub sub;
              map (fun e -> Expr.Neg e) sub;
            ]))

let gen_guard =
  QCheck2.Gen.(
    sized_size (int_range 0 3) @@ fix (fun self n ->
        let cmp =
          let* op =
            oneofl Guard.[ Eq; Ne; Lt; Le; Gt; Ge ]
          in
          let* a = gen_expr in
          let* b = gen_expr in
          return (Guard.Cmp (op, a, b))
        in
        if n = 0 then oneof [ return Guard.True; return Guard.False; cmp ]
        else
          let sub = self (n / 2) in
          oneof
            [
              cmp;
              map2 (fun a b -> Guard.And (a, b)) sub sub;
              map2 (fun a b -> Guard.Or (a, b)) sub sub;
              map (fun g -> Guard.Not g) sub;
            ]))

let gen_action =
  QCheck2.Gen.(
    let* mask = int_range 0 7 in
    let* p1 = gen_expr and* p2 = gen_expr and* p3 = gen_expr in
    let resources =
      [ ("r0", p1); ("r1", p2); ("r2", p3) ]
      |> List.filteri (fun i _ -> mask land (1 lsl i) <> 0)
      |> List.map (fun (r, p) -> (Resource.make r, p))
    in
    return (Action.of_list resources))

let gen_event =
  QCheck2.Gen.(
    let* l = oneofl [ "a"; "b"; "sig" ] in
    let* out = bool in
    let* prio = oneof [ return (Expr.Int 0); gen_expr ] in
    return
      {
        Event.label = Label.make l;
        dir = (if out then Event.Out else Event.In);
        prio;
      })

let gen_proc =
  QCheck2.Gen.(
    sized_size (int_range 0 6) @@ fix (fun self n ->
        if n = 0 then
          oneof
            [
              return Proc.Nil;
              map (fun name -> Proc.Call (name, [])) (oneofl [ "P"; "Q" ]);
              ( let* args = list_size (int_range 1 2) gen_expr in
                return (Proc.Call ("R", args)) );
            ]
        else
          let sub = self (n - 1) in
          let half = self (n / 2) in
          oneof
            [
              map2 (fun a k -> Proc.Act (a, k)) gen_action sub;
              map2 (fun e k -> Proc.Ev (e, k)) gen_event sub;
              map2 (fun a b -> Proc.Choice (a, b)) half half;
              map2 (fun a b -> Proc.Par (a, b)) half half;
              map2 (fun g k -> Proc.If (g, k)) gen_guard sub;
              ( let* k = sub in
                let* labels = list_size (int_range 0 2) (oneofl [ "a"; "b" ]) in
                return
                  (Proc.Restrict
                     (Label.set_of_list (List.map Label.make labels), k)) );
              ( let* k = sub in
                return
                  (Proc.Close (Resource.Set.singleton (Resource.make "r0"), k))
              );
              ( let* body = half in
                let* bound = option gen_expr in
                let* timeout = half in
                let* has_exc = bool in
                let* exc_h = half in
                let* has_int = bool in
                let* int_h = half in
                return
                  (Proc.Scope
                     {
                       Proc.body;
                       bound;
                       exc =
                         (if has_exc then Some (Label.make "exc", exc_h)
                          else None);
                       timeout;
                       interrupt = (if has_int then Some int_h else None);
                     }) );
            ]))

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~name:"print/parse round-trip" ~count:500
    ~print:Syntax.proc_to_string gen_proc (fun p ->
      let printed = Syntax.proc_to_string p in
      match Syntax.parse_proc_string printed with
      | p' -> Proc.equal p p'
      | exception Syntax.Parse_error (msg, l) ->
          QCheck2.Test.fail_reportf "parse error at line %d: %s on %s" l msg
            printed)

let prop_expr_roundtrip =
  QCheck2.Test.make ~name:"expr print/parse round-trip" ~count:500 gen_expr
    (fun e ->
      let printed = Fmt.str "%a" Syntax.print_expr e in
      (* embed in a process argument to reuse the parser *)
      match Syntax.parse_proc_string ("R(" ^ printed ^ ")") with
      | Proc.Call ("R", [ e' ]) -> Expr.equal e e'
      | _ -> false)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_print_parse_roundtrip; prop_expr_roundtrip ]

let () =
  Alcotest.run "syntax"
    [
      ( "parse",
        [
          Alcotest.test_case "simple def" `Quick test_parse_simple_def;
          Alcotest.test_case "parameterized" `Quick test_parse_parameterized;
          Alcotest.test_case "restriction and par" `Quick
            test_parse_restriction_and_par;
          Alcotest.test_case "scope" `Quick test_parse_scope;
          Alcotest.test_case "close and prio event" `Quick
            test_parse_close_and_prio_event;
          Alcotest.test_case "guard forms" `Quick test_parse_guard_forms;
          Alcotest.test_case "paren event process" `Quick
            test_parse_paren_event_process;
          Alcotest.test_case "error line" `Quick test_parse_error_line;
          Alcotest.test_case "duplicate def" `Quick test_parse_duplicate_def;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "fig2" `Quick test_roundtrip_fig2;
          Alcotest.test_case "translated model" `Quick
            test_roundtrip_translated_model;
        ] );
      ("properties", qcheck_cases);
    ]
