(* Unit and property tests for the ACSR kernel: expressions, guards, timed
   actions, the preemption relation, and the operational semantics,
   including the behaviours of Figures 2 and 3 of the paper. *)

open Acsr

let cpu = Resource.make "cpu"
let bus = Resource.make "bus"

let e_int n = Expr.Int n

let action accesses =
  Action.of_list (List.map (fun (r, p) -> (r, e_int p)) accesses)

let step_testable = Alcotest.testable Step.pp Step.equal
let proc_testable = Alcotest.testable Proc.pp Proc.equal

let steps_of ?(defs = Defs.empty) p = Semantics.steps defs p
let prio_of ?(defs = Defs.empty) p = Semantics.prioritized defs p

(* {1 Expressions and guards} *)

let test_expr_eval () =
  let env = Expr.Env.(empty |> add "x" 4 |> add "y" 7) in
  let e = Expr.(Add (Var "x", Mul (Int 2, Var "y"))) in
  Alcotest.(check int) "4 + 2*7" 18 (Expr.eval env e);
  Alcotest.(check int) "max" 7 (Expr.eval env Expr.(Max (Var "x", Var "y")));
  Alcotest.(check int) "min" 4 (Expr.eval env Expr.(Min (Var "x", Var "y")));
  Alcotest.(check int) "sub-neg" (-3) (Expr.eval env Expr.(Sub (Var "x", Var "y")))

let test_expr_unbound () =
  Alcotest.check_raises "unbound var" (Expr.Unbound_parameter "z") (fun () ->
      ignore (Expr.eval Expr.Env.empty (Expr.Var "z")))

let test_expr_subst_folds () =
  let env = Expr.Env.(empty |> add "t" 3) in
  let e = Expr.(Sub (Int 10, Sub (Int 5, Var "t"))) in
  Alcotest.(check bool) "fully folded" true
    (Expr.equal (Expr.subst env e) (Expr.Int 8));
  (* partial substitution keeps the open part *)
  let open_e = Expr.(Add (Var "t", Var "u")) in
  let r = Expr.subst env open_e in
  Alcotest.(check (list string)) "u stays free" [ "u" ] (Expr.free_vars r)

let test_expr_div_by_zero_not_folded () =
  let e = Expr.(Div (Int 1, Var "d")) in
  let r = Expr.subst Expr.Env.(empty |> add "d" 0) e in
  Alcotest.(check bool) "kept as Div" true
    (match r with Expr.Div _ -> true | _ -> false);
  Alcotest.check_raises "raises at eval" Division_by_zero (fun () ->
      ignore (Expr.eval Expr.Env.empty r))

let test_guard_eval () =
  let env = Expr.Env.(empty |> add "e" 2 |> add "cmax" 5) in
  let g = Guard.(conj (lt (Expr.Var "e") (Expr.Var "cmax")) (ge (Expr.Var "e") (Expr.Int 0))) in
  Alcotest.(check bool) "guard holds" true (Guard.eval env g);
  let g2 = Guard.(neg (le (Expr.Var "cmax") (Expr.Var "e"))) in
  Alcotest.(check bool) "negation" true (Guard.eval env g2)

let test_guard_subst_simplifies () =
  let env = Expr.Env.(empty |> add "x" 1) in
  Alcotest.(check bool) "decided to True" true
    (Guard.subst env Guard.(lt (Expr.Var "x") (Expr.Int 5)) = Guard.True);
  Alcotest.(check bool) "and-false collapses" true
    (Guard.subst env
       Guard.(conj (gt (Expr.Var "x") (Expr.Int 5)) (lt (Expr.Var "y") (Expr.Int 0)))
    = Guard.False)

(* {1 Timed actions and preemption} *)

let ground accesses : Action.ground = accesses

let test_action_of_list_sorts () =
  let a = action [ (bus, 1); (cpu, 2) ] in
  Alcotest.(check (list string)) "sorted by resource" [ "bus"; "cpu" ]
    (List.map (fun (r, _) -> Resource.name r) (Action.accesses a))

let test_action_duplicate_rejected () =
  Alcotest.check_raises "duplicate resource"
    (Invalid_argument "Action.of_list: duplicate resource in timed action")
    (fun () -> ignore (action [ (cpu, 1); (cpu, 2) ]))

let test_action_union_disjointness () =
  Alcotest.check_raises "overlap"
    (Invalid_argument "Action.union: overlapping resources") (fun () ->
      ignore (Action.union (action [ (cpu, 1) ]) (action [ (cpu, 2) ])))

let test_preempts_basic () =
  let p = Action.Ground.preempts in
  Alcotest.(check bool) "higher prio same resource" true
    (p (ground [ (cpu, 2) ]) (ground [ (cpu, 1) ]));
  Alcotest.(check bool) "not the converse" false
    (p (ground [ (cpu, 1) ]) (ground [ (cpu, 2) ]));
  Alcotest.(check bool) "superset with extra resource" true
    (p (ground [ (bus, 1); (cpu, 1) ]) (ground [ (cpu, 1) ]));
  Alcotest.(check bool) "resource-using preempts idle" true
    (p (ground [ (cpu, 1) ]) Action.Ground.idle);
  Alcotest.(check bool) "priority-0 use does not preempt idle" false
    (p (ground [ (cpu, 0) ]) Action.Ground.idle);
  Alcotest.(check bool) "incomparable resources" false
    (p (ground [ (bus, 1) ]) (ground [ (cpu, 1) ]));
  Alcotest.(check bool) "irreflexive" false
    (p (ground [ (cpu, 1) ]) (ground [ (cpu, 1) ]))

let test_step_preempts () =
  let p = Step.preempts in
  Alcotest.(check bool) "tau>0 preempts action" true
    (p (Step.Tau (None, 1)) (Step.Action (ground [ (cpu, 9) ])));
  Alcotest.(check bool) "tau:0 does not preempt action" false
    (p (Step.Tau (None, 0)) (Step.Action (ground [ (cpu, 1) ])));
  let l = Label.make "a" in
  Alcotest.(check bool) "same-label same-dir event by priority" true
    (p (Step.Event (l, Event.Out, 2)) (Step.Event (l, Event.Out, 1)));
  Alcotest.(check bool) "different label no preemption" false
    (p
       (Step.Event (Label.make "b", Event.Out, 9))
       (Step.Event (l, Event.Out, 1)));
  Alcotest.(check bool) "in vs out no preemption" false
    (p (Step.Event (l, Event.In, 9)) (Step.Event (l, Event.Out, 1)));
  Alcotest.(check bool) "taus compare across origins" true
    (p (Step.Tau (Some l, 2)) (Step.Tau (Some (Label.make "b"), 1)));
  Alcotest.(check bool) "equal-priority taus coexist" false
    (p (Step.Tau (Some l, 1)) (Step.Tau (Some (Label.make "b"), 1)));
  Alcotest.(check bool) "event does not preempt action" false
    (p (Step.Event (l, Event.Out, 9)) (Step.Action (ground [ (cpu, 1) ])))

(* {1 Operational semantics: Figure 2} *)

(* Simple = {(cpu,1)} : {(cpu,1),(bus,1)} : done!.Simple   (Fig. 2a) *)
let simple_defs =
  Defs.of_list
    [
      ( "Simple",
        [],
        Proc.(
          act
            (action [ (cpu, 1) ])
            (act
               (action [ (cpu, 1); (bus, 1) ])
               (send (Label.make "done") (call "Simple" [])))) );
    ]

let test_fig2_simple_cycle () =
  let p0 = Proc.call "Simple" [] in
  (match steps_of ~defs:simple_defs p0 with
  | [ (Step.Action a, p1) ] ->
      Alcotest.(check bool) "first step uses cpu only" true
        (Action.Ground.equal a (ground [ (cpu, 1) ]));
      (match steps_of ~defs:simple_defs p1 with
      | [ (Step.Action a2, p2) ] ->
          Alcotest.(check bool) "second step uses cpu and bus" true
            (Action.Ground.equal a2 (ground [ (bus, 1); (cpu, 1) ]));
          (match steps_of ~defs:simple_defs p2 with
          | [ (Step.Event (l, Event.Out, 0), p3) ] ->
              Alcotest.(check string) "announces done" "done" (Label.name l);
              Alcotest.check proc_testable "restarts" (Proc.call "Simple" []) p3
          | _ -> Alcotest.fail "expected a single done! step")
      | _ -> Alcotest.fail "expected a single cpu+bus step")
  | _ -> Alcotest.fail "expected a single cpu step")

let test_fig2b_idling_alternative () =
  (* Simple with an idling alternative before the bus step (Fig. 2b): the
     process can wait for the bus without deadlocking. *)
  let rec_p =
    Proc.(
      choice
        (act (action [ (cpu, 1); (bus, 1) ]) nil)
        (act Action.idle (call "Wait" [])))
  in
  let defs = Defs.of_list [ ("Wait", [], rec_p) ] in
  let steps = steps_of ~defs (Proc.call "Wait" []) in
  Alcotest.(check int) "two alternatives" 2 (List.length steps);
  Alcotest.(check bool) "one is idling" true
    (List.exists
       (fun (s, _) ->
         match s with Step.Action a -> Action.Ground.is_idle a | _ -> false)
       steps)

(* {1 Parallel composition} *)

let test_par_disjoint_resources_merge () =
  let p = Proc.(par (act (action [ (cpu, 1) ]) nil) (act (action [ (bus, 1) ]) nil)) in
  match steps_of p with
  | [ (Step.Action a, _) ] ->
      Alcotest.(check bool) "merged action" true
        (Action.Ground.equal a (ground [ (bus, 1); (cpu, 1) ]))
  | _ -> Alcotest.fail "expected exactly the merged timed step"

let test_par_resource_conflict_deadlocks () =
  let p =
    Proc.(par (act (action [ (cpu, 1) ]) nil) (act (action [ (cpu, 2) ]) nil))
  in
  Alcotest.(check bool) "no step possible" true
    (Semantics.is_deadlocked Defs.empty p)

let test_par_nil_blocks_time () =
  (* NIL cannot let time pass: P || NIL deadlocks even if P could run. *)
  let p = Proc.(par (act (action [ (cpu, 1) ]) nil) nil) in
  Alcotest.(check bool) "deadlocked" true (Semantics.is_deadlocked Defs.empty p)

let test_par_event_interleaving () =
  let a = Label.make "a" and b = Label.make "b" in
  let p = Proc.(par (send a nil) (send b nil)) in
  let steps = steps_of p in
  Alcotest.(check int) "both events offered" 2 (List.length steps)

let test_par_synchronization () =
  let a = Label.make "a" in
  let p = Proc.(par (send ~prio:(e_int 2) a nil) (receive ~prio:(e_int 3) a nil)) in
  let steps = steps_of p in
  (* unsynchronized offers plus the tau *)
  Alcotest.(check int) "three steps" 3 (List.length steps);
  Alcotest.(check bool) "tau with summed priority" true
    (List.exists
       (fun (s, _) ->
         match s with
         | Step.Tau (Some l, 5) -> Label.equal l a
         | _ -> false)
       steps)

let test_restrict_forces_sync () =
  let a = Label.make "a" in
  let p =
    Proc.(
      restrict
        (Label.Set.singleton a)
        (par (send a nil) (receive a nil)))
  in
  match steps_of p with
  | [ (Step.Tau (Some l, 0), _) ] ->
      Alcotest.(check string) "tau@a" "a" (Label.name l)
  | _ -> Alcotest.fail "expected only the synchronized tau"

let test_prioritized_preemption_in_par () =
  (* Two processes with idling alternatives competing for cpu: the
     higher-priority access preempts both the lower one and idling. *)
  let contender prio =
    Proc.(choice (act (action [ (cpu, prio) ]) nil) (act Action.idle nil))
  in
  let p = Proc.par (contender 2) (contender 1) in
  (* joint steps: high+idle, idle+low, idle+idle (high+low clashes on cpu) *)
  let all = steps_of p in
  Alcotest.(check int) "three unprioritized interleavings" 3 (List.length all);
  match prio_of p with
  | [ (Step.Action a, _) ] ->
      Alcotest.(check bool) "only the high-priority access survives" true
        (Action.Ground.equal a (ground [ (cpu, 2) ]))
  | _ -> Alcotest.fail "expected a single prioritized step"

let test_close_claims_idle_resources () =
  let p =
    Proc.(
      close
        (Resource.Set.of_list [ cpu; bus ])
        (act (action [ (cpu, 1) ]) nil))
  in
  match steps_of p with
  | [ (Step.Action a, _) ] ->
      Alcotest.(check int) "bus claimed at 0" 0 (Action.Ground.priority_of a bus);
      Alcotest.(check bool) "bus in resource set" true
        (Resource.Set.mem bus (Action.Ground.resources a))
  | _ -> Alcotest.fail "expected one closed step"

(* {1 Temporal scopes} *)

let idle_defs = Defs.of_list [ ("Idle", [], Proc.(act Action.idle (call "Idle" []))) ]

let test_scope_timeout () =
  let t_label = Label.make "timeout_fired" in
  let p =
    Proc.scope ~bound:(e_int 2)
      ~timeout:(Proc.send t_label Proc.nil)
      (Proc.call "Idle" [])
  in
  let rec advance p n =
    if n = 0 then p
    else
      match steps_of ~defs:idle_defs p with
      | [ (Step.Action _, p') ] -> advance p' (n - 1)
      | _ -> Alcotest.fail "expected a single idle step inside the scope"
  in
  let at_bound = advance p 2 in
  match steps_of ~defs:idle_defs at_bound with
  | [ (Step.Event (l, Event.Out, 0), _) ] ->
      Alcotest.(check string) "timeout handler runs" "timeout_fired"
        (Label.name l)
  | _ -> Alcotest.fail "expected the timeout handler's step"

let test_scope_timeout_nil_deadlocks () =
  (* A scope whose timeout handler is NIL deadlocks at the bound: this is
     exactly how deadline violations manifest (paper, Section 5). *)
  let p = Proc.scope ~bound:(e_int 1) (Proc.call "Idle" []) in
  match steps_of ~defs:idle_defs p with
  | [ (Step.Action _, p') ] ->
      Alcotest.(check bool) "deadlocked at bound" true
        (Semantics.is_deadlocked idle_defs p')
  | _ -> Alcotest.fail "expected one step then deadlock"

let test_scope_exception_exit () =
  let exc = Label.make "exc" in
  let h_label = Label.make "handled" in
  let body = Proc.send exc (Proc.call "Idle" []) in
  let p =
    Proc.scope ~exc:(exc, Proc.send h_label Proc.nil) ~bound:(e_int 5) body
  in
  match steps_of ~defs:idle_defs p with
  | [ (Step.Event (l, Event.Out, 0), p') ] ->
      Alcotest.(check string) "exception event visible" "exc" (Label.name l);
      (match steps_of ~defs:idle_defs p' with
      | [ (Step.Event (l', Event.Out, 0), _) ] ->
          Alcotest.(check string) "control in handler" "handled"
            (Label.name l')
      | _ -> Alcotest.fail "expected handler step")
  | _ -> Alcotest.fail "expected the exception exit"

let test_scope_interrupt_always_enabled () =
  let i = Label.make "interrupt" in
  let p =
    Proc.scope ~bound:(e_int 5)
      ~interrupt:(Proc.receive i (Proc.send (Label.make "h") Proc.nil))
      (Proc.call "Idle" [])
  in
  let steps = steps_of ~defs:idle_defs p in
  Alcotest.(check int) "body idle + interrupt trigger" 2 (List.length steps);
  Alcotest.(check bool) "interrupt input offered" true
    (List.exists
       (fun (s, _) ->
         match s with
         | Step.Event (l, Event.In, _) -> Label.equal l i
         | _ -> false)
       steps)

let test_scope_event_does_not_consume_bound () =
  let a = Label.make "a" in
  let body = Proc.send a (Proc.send a Proc.nil) in
  let p = Proc.scope ~bound:(e_int 1) ~timeout:Proc.nil body in
  (* two instantaneous steps fit within a 1-quantum scope *)
  match steps_of p with
  | [ (Step.Event _, p') ] -> (
      match steps_of p' with
      | [ (Step.Event _, _) ] -> ()
      | _ -> Alcotest.fail "second event should still be allowed")
  | _ -> Alcotest.fail "expected event step"

(* {1 Parameterized definitions} *)

let counter_defs =
  (* Count(n) = [n < 3] -> {} : Count(n+1)  +  [n >= 3] -> done!.NIL *)
  Defs.of_list
    [
      ( "Count",
        [ "n" ],
        Proc.(
          choice
            (if_
               Guard.(lt (Expr.Var "n") (Expr.Int 3))
               (act Action.idle (call "Count" [ Expr.Add (Expr.Var "n", Expr.Int 1) ])))
            (if_
               Guard.(ge (Expr.Var "n") (Expr.Int 3))
               (send (Label.make "done") nil))) );
    ]

let test_parameterized_counter () =
  let rec run p n_ticks =
    match steps_of ~defs:counter_defs p with
    | [ (Step.Action _, p') ] -> run p' (n_ticks + 1)
    | [ (Step.Event (l, Event.Out, 0), _) ] ->
        Alcotest.(check string) "done" "done" (Label.name l);
        n_ticks
    | _ -> Alcotest.fail "unexpected step shape"
  in
  Alcotest.(check int) "three ticks from 0" 3 (run (Proc.call "Count" [ e_int 0 ]) 0);
  Alcotest.(check int) "one tick from 2" 1 (run (Proc.call "Count" [ e_int 2 ]) 0)

let test_defs_arity_mismatch () =
  Alcotest.check_raises "arity" (Defs.Arity_mismatch ("Count", 1, 2))
    (fun () ->
      ignore
        (steps_of ~defs:counter_defs (Proc.call "Count" [ e_int 0; e_int 1 ])))

let test_defs_undefined () =
  Alcotest.check_raises "undefined" (Defs.Undefined "Nope") (fun () ->
      ignore (steps_of (Proc.call "Nope" [])))

let test_defs_unbound_body_rejected () =
  Alcotest.check_raises "unbound in body"
    (Defs.Unbound_in_body ("Bad", "x")) (fun () ->
      ignore
        (Defs.add Defs.empty ~name:"Bad" ~formals:[]
           (Proc.act (Action.singleton cpu (Expr.Var "x")) Proc.nil)))

let test_unguarded_recursion_detected () =
  let defs = Defs.of_list [ ("X", [], Proc.call "X" []) ] in
  Alcotest.check_raises "unguarded" (Semantics.Unguarded_recursion "X")
    (fun () -> ignore (steps_of ~defs (Proc.call "X" [])))

let test_not_closed_detected () =
  let p = Proc.act (Action.singleton cpu (Expr.Var "p")) Proc.nil in
  Alcotest.(check bool) "raises Not_closed" true
    (try
       ignore (steps_of p);
       false
     with Semantics.Not_closed _ -> true)

(* {1 Expression edge cases} *)

let test_expr_div_mod_negatives () =
  let env = Expr.Env.empty in
  Alcotest.(check int) "trunc division" (-2)
    (Expr.eval env Expr.(Div (Int (-5), Int 2)));
  Alcotest.(check int) "mod sign follows dividend" (-1)
    (Expr.eval env Expr.(Mod (Int (-5), Int 2)));
  Alcotest.(check int) "nested min/max" 4
    (Expr.eval env Expr.(Max (Min (Int 4, Int 9), Neg (Int 3))))

let test_expr_subst_keeps_free () =
  let env = Expr.Env.(empty |> add "a" 1) in
  let e = Expr.(Mul (Var "a", Max (Var "b", Int 2))) in
  let r = Expr.subst env e in
  Alcotest.(check (list string)) "b still free" [ "b" ] (Expr.free_vars r);
  Alcotest.(check int) "eval after completing env" 6
    (Expr.eval Expr.Env.(empty |> add "b" 6) r)

(* {1 Property-based tests} *)

let resources = [| Resource.make "r0"; Resource.make "r1"; Resource.make "r2" |]

let gen_ground_action =
  QCheck2.Gen.(
    let* mask = int_range 0 7 in
    let* prios = array_size (return 3) (int_range 0 3) in
    let accesses =
      List.filteri (fun i _ -> mask land (1 lsl i) <> 0)
        (Array.to_list (Array.mapi (fun i r -> (r, prios.(i))) resources))
    in
    return (accesses : Action.ground))

let prop_preempts_irreflexive =
  QCheck2.Test.make ~name:"action preemption is irreflexive" ~count:500
    gen_ground_action (fun a -> not (Action.Ground.preempts a a))

let prop_preempts_antisymmetric =
  QCheck2.Test.make ~name:"action preemption is antisymmetric" ~count:500
    QCheck2.Gen.(pair gen_ground_action gen_ground_action)
    (fun (a, b) ->
      not (Action.Ground.preempts a b && Action.Ground.preempts b a))

let prop_preempts_transitive =
  QCheck2.Test.make ~name:"action preemption is transitive" ~count:2000
    QCheck2.Gen.(triple gen_ground_action gen_ground_action gen_ground_action)
    (fun (a, b, c) ->
      (* preempts x y means y < x *)
      if Action.Ground.preempts b c && Action.Ground.preempts a b then
        Action.Ground.preempts a c
      else true)

let prop_prioritize_nonempty =
  QCheck2.Test.make ~name:"prioritize keeps at least one step" ~count:500
    QCheck2.Gen.(list_size (int_range 1 6) gen_ground_action)
    (fun actions ->
      let steps = List.map (fun a -> (Step.Action a, ())) actions in
      Step.prioritize steps <> [])

let prop_prioritize_subset =
  QCheck2.Test.make ~name:"prioritize returns a subset" ~count:500
    QCheck2.Gen.(list_size (int_range 0 6) gen_ground_action)
    (fun actions ->
      let steps = List.map (fun a -> (Step.Action a, ())) actions in
      List.for_all (fun s -> List.mem s steps) (Step.prioritize steps))

let prop_union_idle_neutral =
  QCheck2.Test.make ~name:"idle is neutral for union" ~count:500
    gen_ground_action (fun a ->
      Action.Ground.equal (Action.Ground.union a Action.Ground.idle) a)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_preempts_irreflexive;
      prop_preempts_antisymmetric;
      prop_preempts_transitive;
      prop_prioritize_nonempty;
      prop_prioritize_subset;
      prop_union_idle_neutral;
    ]

let () =
  ignore step_testable;
  Alcotest.run "acsr"
    [
      ( "expr",
        [
          Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "unbound" `Quick test_expr_unbound;
          Alcotest.test_case "subst folds" `Quick test_expr_subst_folds;
          Alcotest.test_case "div by zero kept" `Quick
            test_expr_div_by_zero_not_folded;
        ] );
      ( "guard",
        [
          Alcotest.test_case "eval" `Quick test_guard_eval;
          Alcotest.test_case "subst simplifies" `Quick
            test_guard_subst_simplifies;
        ] );
      ( "expr edges",
        [
          Alcotest.test_case "div/mod negatives" `Quick
            test_expr_div_mod_negatives;
          Alcotest.test_case "subst keeps free" `Quick
            test_expr_subst_keeps_free;
        ] );
      ( "action",
        [
          Alcotest.test_case "of_list sorts" `Quick test_action_of_list_sorts;
          Alcotest.test_case "duplicate rejected" `Quick
            test_action_duplicate_rejected;
          Alcotest.test_case "union disjointness" `Quick
            test_action_union_disjointness;
          Alcotest.test_case "preempts basic" `Quick test_preempts_basic;
          Alcotest.test_case "step preempts" `Quick test_step_preempts;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "fig2 simple cycle" `Quick test_fig2_simple_cycle;
          Alcotest.test_case "fig2b idling" `Quick test_fig2b_idling_alternative;
          Alcotest.test_case "par merges disjoint" `Quick
            test_par_disjoint_resources_merge;
          Alcotest.test_case "par conflict deadlocks" `Quick
            test_par_resource_conflict_deadlocks;
          Alcotest.test_case "par nil blocks time" `Quick
            test_par_nil_blocks_time;
          Alcotest.test_case "par event interleaving" `Quick
            test_par_event_interleaving;
          Alcotest.test_case "par synchronization" `Quick
            test_par_synchronization;
          Alcotest.test_case "restrict forces sync" `Quick
            test_restrict_forces_sync;
          Alcotest.test_case "prioritized preemption" `Quick
            test_prioritized_preemption_in_par;
          Alcotest.test_case "close claims idle resources" `Quick
            test_close_claims_idle_resources;
        ] );
      ( "scope",
        [
          Alcotest.test_case "timeout" `Quick test_scope_timeout;
          Alcotest.test_case "timeout nil deadlocks" `Quick
            test_scope_timeout_nil_deadlocks;
          Alcotest.test_case "exception exit" `Quick test_scope_exception_exit;
          Alcotest.test_case "interrupt enabled" `Quick
            test_scope_interrupt_always_enabled;
          Alcotest.test_case "events free within quantum" `Quick
            test_scope_event_does_not_consume_bound;
        ] );
      ( "defs",
        [
          Alcotest.test_case "parameterized counter" `Quick
            test_parameterized_counter;
          Alcotest.test_case "arity mismatch" `Quick test_defs_arity_mismatch;
          Alcotest.test_case "undefined" `Quick test_defs_undefined;
          Alcotest.test_case "unbound body rejected" `Quick
            test_defs_unbound_body_rejected;
          Alcotest.test_case "unguarded recursion" `Quick
            test_unguarded_recursion_detected;
          Alcotest.test_case "not closed" `Quick test_not_closed_detected;
        ] );
      ("properties", qcheck_cases);
    ]
